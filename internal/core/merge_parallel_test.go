package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// Property tests for the parallel merge kernels: for randomized shard
// counts, list sizes, reduction kinds, and parallelism degrees (including
// 1 and more than NumCPU), the parallel output must be bit-identical to
// the sequential kernel's. CI runs this file under -race, which also
// exercises the goroutine handoff in the leaf merges and tree reduction.

// randDisjointLists fabricates item-disjoint ascending bin lists the way
// a sharded sketch partitions items: every item carries its list index so
// no item appears twice anywhere.
func randDisjointLists(rng *rand.Rand, nlists, maxLen int, integral bool) [][]Bin {
	lists := make([][]Bin, nlists)
	for li := range lists {
		n := rng.Intn(maxLen + 1)
		bins := make([]Bin, n)
		c := 0.0
		for i := range bins {
			if integral {
				c += float64(1 + rng.Intn(5))
			} else {
				c += rng.Float64() * 3
			}
			bins[i] = Bin{Item: fmt.Sprintf("s%02d-item-%06d", li, i), Count: c}
		}
		lists[li] = bins
	}
	return lists
}

// randOverlapLists fabricates lists whose items deliberately collide
// across lists (and repeat within one), ascending by count as Bins()
// returns them.
func randOverlapLists(rng *rand.Rand, nlists, maxLen, universe int, integral bool) [][]Bin {
	lists := make([][]Bin, nlists)
	for li := range lists {
		n := rng.Intn(maxLen + 1)
		bins := make([]Bin, n)
		for i := range bins {
			c := rng.Float64() * 100
			if integral {
				c = float64(1 + rng.Intn(100))
			}
			bins[i] = Bin{Item: fmt.Sprintf("item-%04d", rng.Intn(universe)), Count: c}
		}
		sortAscending(bins)
		lists[li] = bins
	}
	return lists
}

func binsEqual(t *testing.T, label string, got, want []Bin) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d bins, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: bin %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

func TestSumDisjointParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(9001))
	pars := []int{1, 2, 3, 4, runtime.NumCPU(), 2*runtime.NumCPU() + 1, 64}
	for trial := 0; trial < 40; trial++ {
		nlists := 1 + rng.Intn(12)
		maxLen := 1 + rng.Intn(2500)
		lists := randDisjointLists(rng, nlists, maxLen, trial%2 == 0)
		want := SumDisjointAscending(lists...)
		for _, par := range pars {
			got := SumDisjointParallel(par, lists...)
			binsEqual(t, fmt.Sprintf("trial %d par %d", trial, par), got, want)
		}
	}
}

func TestSumDisjointParallelAboveCutoff(t *testing.T) {
	// Force the parallel path (total well above ParallelMergeCutoff) and
	// check against the sequential kernel on a big input.
	rng := rand.New(rand.NewSource(77))
	lists := randDisjointLists(rng, 16, ParallelMergeCutoff/2, false)
	want := SumDisjointAscending(lists...)
	for _, par := range []int{2, 4, 8, runtime.NumCPU() + 3} {
		got := SumDisjointParallel(par, lists...)
		binsEqual(t, fmt.Sprintf("par %d", par), got, want)
	}
}

func TestSumBinsParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	pars := []int{1, 2, 3, 5, runtime.NumCPU(), 3 * runtime.NumCPU()}
	for trial := 0; trial < 40; trial++ {
		nlists := 1 + rng.Intn(10)
		maxLen := 1 + rng.Intn(2000)
		universe := 1 + rng.Intn(4000)
		lists := randOverlapLists(rng, nlists, maxLen, universe, trial%2 == 0)
		want := SumBins(lists...)
		for _, par := range pars {
			got := SumBinsParallel(par, lists...)
			binsEqual(t, fmt.Sprintf("trial %d par %d", trial, par), got, want)
		}
	}
}

func TestMergeBinsParallelMatchesSequential(t *testing.T) {
	// The reduction consumes the RNG, so equivalence must hold draw for
	// draw: run sequential and parallel from identically seeded RNGs and
	// demand bit-identical reduced output for every reduction kind.
	rng := rand.New(rand.NewSource(1966))
	kinds := []ReduceKind{PairwiseReduction, PivotalReduction, MisraGriesReduction}
	for trial := 0; trial < 25; trial++ {
		nlists := 2 + rng.Intn(8)
		maxLen := 1 + rng.Intn(3000)
		var lists [][]Bin
		if trial%2 == 0 {
			lists = randDisjointLists(rng, nlists, maxLen, trial%4 == 0)
		} else {
			lists = randOverlapLists(rng, nlists, maxLen, 5000, trial%4 == 1)
		}
		total := 0
		for _, l := range lists {
			total += len(l)
		}
		m := 1 + rng.Intn(total+1)
		kind := kinds[trial%len(kinds)]
		par := 1 + rng.Intn(2*runtime.NumCPU()+2)
		seed := rng.Int63()
		want := MergeBins(m, kind, rand.New(rand.NewSource(seed)), lists...)
		got := MergeBinsParallel(m, kind, rand.New(rand.NewSource(seed)), par, lists...)
		binsEqual(t, fmt.Sprintf("trial %d kind %v m %d par %d", trial, kind, m, par), got, want)
	}
}

func TestMergeSoAZeroAlloc(t *testing.T) {
	// The SoA merge kernel itself must not allocate once its destination
	// has capacity: the parallel refill's steady-state cost is the final
	// []Bin conversion only.
	rng := rand.New(rand.NewSource(5))
	lists := randDisjointLists(rng, 2, 4096, true)
	var a, b, dst soaRun
	a.fromDisjoint(lists[:1], len(lists[0]))
	b.fromDisjoint(lists[1:], len(lists[1]))
	mergeSoA(&dst, &a, &b) // size dst once
	allocs := testing.AllocsPerRun(50, func() {
		mergeSoA(&dst, &a, &b)
	})
	if allocs != 0 {
		t.Fatalf("mergeSoA allocates %.1f times per run, want 0", allocs)
	}
}

func BenchmarkSumDisjoint(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	lists := randDisjointLists(rng, 8, 8192, true)
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			SumDisjointAscending(lists...)
		}
	})
	for _, par := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("parallel-%d", par), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				SumDisjointParallel(par, lists...)
			}
		})
	}
}
