package core

import (
	"fmt"
	"math"
	"sort"
	"testing"
)

func TestRestoreUnitRoundTrip(t *testing.T) {
	rng := newRng(17)
	orig := New(8, Unbiased, rng)
	for i := 0; i < 900; i++ {
		orig.Update(fmt.Sprintf("i%d", rng.Intn(40)))
	}
	restored := New(8, Unbiased, newRng(18))
	if err := RestoreUnit(restored, orig.Bins(), orig.Rows()); err != nil {
		t.Fatal(err)
	}
	if restored.Rows() != orig.Rows() || restored.Total() != orig.Total() {
		t.Errorf("rows/total = %d/%v, want %d/%v", restored.Rows(), restored.Total(), orig.Rows(), orig.Total())
	}
	for _, b := range orig.Bins() {
		if got := restored.Estimate(b.Item); got != b.Count {
			t.Errorf("Estimate(%s) = %v, want %v", b.Item, got, b.Count)
		}
	}
	if err := restored.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Restored sketch keeps working.
	restored.Update("fresh")
	if restored.Rows() != orig.Rows()+1 {
		t.Error("restored sketch does not accept updates")
	}
}

func TestRestoreUnitValidation(t *testing.T) {
	fresh := func() *Sketch { return New(2, Unbiased, newRng(1)) }

	if err := RestoreUnit(fresh(), []Bin{{"a", 1}, {"b", 2}, {"c", 3}}, 6); err == nil {
		t.Error("over-capacity restore accepted")
	}
	if err := RestoreUnit(fresh(), []Bin{{"a", 1.5}}, 1); err == nil {
		t.Error("non-integral count accepted")
	}
	if err := RestoreUnit(fresh(), []Bin{{"a", -1}}, -1); err == nil {
		t.Error("negative count accepted")
	}
	if err := RestoreUnit(fresh(), []Bin{{"a", math.Inf(1)}}, 0); err == nil {
		t.Error("+Inf count accepted")
	}
	if err := RestoreUnit(fresh(), []Bin{{"a", math.NaN()}}, 0); err == nil {
		t.Error("NaN count accepted")
	}
	// float64(MaxInt64) == 2^63: integral, but its int64 conversion
	// overflows — must be rejected, not converted.
	if err := RestoreUnit(fresh(), []Bin{{"a", float64(math.MaxInt64)}}, 0); err == nil {
		t.Error("int64-overflowing count accepted")
	}
	if err := RestoreUnit(fresh(), []Bin{{"a", 2}}, 5); err == nil {
		t.Error("row/mass mismatch accepted")
	}
	s := fresh()
	s.Update("x")
	if err := RestoreUnit(s, []Bin{{"a", 1}}, 1); err == nil {
		t.Error("restore into non-empty sketch accepted")
	}
	// rows == 0 means recompute from mass.
	s2 := fresh()
	if err := RestoreUnit(s2, []Bin{{"a", 4}}, 0); err != nil {
		t.Fatal(err)
	}
	if s2.Rows() != 4 {
		t.Errorf("Rows = %d, want 4", s2.Rows())
	}
	// Zero-count bins are skipped.
	s3 := fresh()
	if err := RestoreUnit(s3, []Bin{{"a", 0}, {"b", 3}}, 3); err != nil {
		t.Fatal(err)
	}
	if s3.Size() != 1 {
		t.Errorf("Size = %d, want 1 (zero bin skipped)", s3.Size())
	}
}

func TestRestoreWeightedRoundTrip(t *testing.T) {
	rng := newRng(23)
	orig := NewWeighted(16, rng)
	for i := 0; i < 800; i++ {
		orig.Update(fmt.Sprintf("i%d", rng.Intn(60)), rng.Float64()*10+0.1)
	}
	restored := NewWeighted(16, newRng(24))
	if err := RestoreWeighted(restored, orig.Bins(), orig.Rows()); err != nil {
		t.Fatal(err)
	}
	if restored.Rows() != orig.Rows() {
		t.Errorf("Rows = %d, want %d", restored.Rows(), orig.Rows())
	}
	if math.Abs(restored.Total()-orig.Total()) > 1e-9 {
		t.Errorf("Total = %v, want %v", restored.Total(), orig.Total())
	}
	if restored.MinCount() != orig.MinCount() {
		t.Errorf("MinCount = %v, want %v", restored.MinCount(), orig.MinCount())
	}
	for _, b := range orig.Bins() {
		if got := restored.Estimate(b.Item); got != b.Count {
			t.Errorf("Estimate(%s) = %v, want %v", b.Item, got, b.Count)
		}
	}
	if err := restored.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	restored.Update("fresh", 2)
	if err := restored.CheckInvariants(); err != nil {
		t.Fatalf("after post-restore update: %v", err)
	}
}

// TestRestoreWeightedKeepsZeroBins: a zero-count bin's label is sketch
// state; the Update-replay restore silently dropped it, the direct-state
// restore must not.
func TestRestoreWeightedKeepsZeroBins(t *testing.T) {
	s := NewWeighted(4, newRng(3))
	if err := RestoreWeighted(s, []Bin{{"ghost", 0}, {"a", 2}, {"b", 5}}, 0); err != nil {
		t.Fatal(err)
	}
	if s.Size() != 3 {
		t.Fatalf("Size = %d, want 3 (zero bin kept)", s.Size())
	}
	if !s.Contains("ghost") {
		t.Fatal("zero-count bin identity dropped")
	}
	if s.Estimate("ghost") != 0 {
		t.Fatalf("ghost estimate = %v", s.Estimate("ghost"))
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The zero bin is the minimum, so positive mass can land on it.
	s.Update("newcomer", 1)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreWeightedValidation(t *testing.T) {
	fresh := func() *WeightedSketch { return NewWeighted(2, newRng(1)) }
	if err := RestoreWeighted(fresh(), []Bin{{"a", 1}, {"b", 2}, {"c", 3}}, 0); err == nil {
		t.Error("over-capacity restore accepted")
	}
	if err := RestoreWeighted(fresh(), []Bin{{"a", -1}}, 0); err == nil {
		t.Error("negative count accepted")
	}
	if err := RestoreWeighted(fresh(), []Bin{{"a", math.NaN()}}, 0); err == nil {
		t.Error("NaN count accepted")
	}
	if err := RestoreWeighted(fresh(), []Bin{{"a", math.Inf(1)}}, 0); err == nil {
		t.Error("Inf count accepted")
	}
	if err := RestoreWeighted(fresh(), []Bin{{"a", 1}, {"a", 2}}, 0); err == nil {
		t.Error("duplicate item accepted")
	}
	// A rejected restore must leave the sketch empty and reusable — no
	// half-filled index from the failed attempt.
	reuse := fresh()
	if err := RestoreWeighted(reuse, []Bin{{"a", 1}, {"b", math.NaN()}}, 0); err == nil {
		t.Fatal("NaN mid-list accepted")
	}
	if err := RestoreWeighted(reuse, []Bin{{"a", 1}, {"b", 2}}, 0); err != nil {
		t.Fatalf("retry after rejected restore failed: %v", err)
	}
	if reuse.Size() != 2 || reuse.Estimate("a") != 1 {
		t.Fatalf("retry state wrong: size=%d a=%v", reuse.Size(), reuse.Estimate("a"))
	}
	reuse2 := NewWeighted(4, newRng(1))
	if err := RestoreWeighted(reuse2, []Bin{{"a", 1}, {"b", 2}, {"a", 3}}, 0); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := RestoreWeighted(reuse2, []Bin{{"a", 1}, {"b", 2}}, 0); err != nil {
		t.Fatalf("retry after duplicate-rejected restore failed: %v", err)
	}
	if err := RestoreWeighted(fresh(), []Bin{{"a", 1}}, -1); err == nil {
		t.Error("negative rows accepted")
	}
	s := fresh()
	s.Update("x", 1)
	if err := RestoreWeighted(s, []Bin{{"a", 1}}, 0); err == nil {
		t.Error("restore into non-empty sketch accepted")
	}
	// rows == 0 falls back to the bin count.
	s2 := fresh()
	if err := RestoreWeighted(s2, []Bin{{"a", 4}, {"b", 1}}, 0); err != nil {
		t.Fatal(err)
	}
	if s2.Rows() != 2 {
		t.Errorf("Rows = %d, want 2", s2.Rows())
	}
}

// TestRestoreWeightedMatchesUpdateReplay: on snapshots without zero-count
// bins the direct-state restore is observationally identical to the old
// per-bin Update replay.
func TestRestoreWeightedMatchesUpdateReplay(t *testing.T) {
	rng := newRng(31)
	orig := NewWeighted(8, rng)
	for i := 0; i < 500; i++ {
		orig.Update(fmt.Sprintf("k%d", rng.Intn(30)), rng.Float64()+0.5)
	}
	bins := orig.Bins()

	direct := NewWeighted(8, newRng(1))
	if err := RestoreWeighted(direct, bins, 0); err != nil {
		t.Fatal(err)
	}
	replay := NewWeighted(8, newRng(2))
	for _, b := range bins {
		if b.Count > 0 {
			replay.Update(b.Item, b.Count)
		}
	}
	da, ra := direct.Bins(), replay.Bins()
	sortAscending(da)
	sortAscending(ra)
	if len(da) != len(ra) {
		t.Fatalf("bin counts differ: %d vs %d", len(da), len(ra))
	}
	for i := range da {
		if da[i] != ra[i] {
			t.Fatalf("bin %d: direct %+v, replay %+v", i, da[i], ra[i])
		}
	}
	if direct.Total() != replay.Total() || direct.MinCount() != replay.MinCount() {
		t.Fatalf("total/min: direct %v/%v, replay %v/%v",
			direct.Total(), direct.MinCount(), replay.Total(), replay.MinCount())
	}
}

// TestSubsetSumBins: the bin-level estimator must agree exactly with
// loading the bins into a sketch and querying it.
func TestSubsetSumBins(t *testing.T) {
	rng := newRng(41)
	for _, m := range []int{4, 8, 64} {
		w := NewWeighted(m, rng)
		for i := 0; i < 300; i++ {
			w.Update(fmt.Sprintf("g%d/i%d", i%3, rng.Intn(50)), rng.Float64()+0.25)
		}
		bins := w.Bins()
		sort.Slice(bins, func(i, j int) bool { return bins[i].Count < bins[j].Count })
		pred := func(s string) bool { return s[1] == '1' }
		got := SubsetSumBins(bins, m, pred)
		want := w.SubsetSum(pred)
		// Value can differ by float summation order (bins sorted vs heap
		// order); StdErr and SampleBins must be exactly equal.
		if math.Abs(got.Value-want.Value) > 1e-9*math.Abs(want.Value) ||
			got.StdErr != want.StdErr || got.SampleBins != want.SampleBins {
			t.Errorf("m=%d: SubsetSumBins = %+v, sketch SubsetSum = %+v", m, got, want)
		}
	}
	// Under capacity: N̂min must be 0.
	e := SubsetSumBins([]Bin{{"a", 5}}, 4, func(string) bool { return true })
	if e.StdErr != 0 {
		t.Errorf("under-capacity StdErr = %v, want 0", e.StdErr)
	}
}
