package core

import (
	"fmt"
	"testing"
)

func TestRestoreUnitRoundTrip(t *testing.T) {
	rng := newRng(17)
	orig := New(8, Unbiased, rng)
	for i := 0; i < 900; i++ {
		orig.Update(fmt.Sprintf("i%d", rng.Intn(40)))
	}
	restored := New(8, Unbiased, newRng(18))
	if err := RestoreUnit(restored, orig.Bins(), orig.Rows()); err != nil {
		t.Fatal(err)
	}
	if restored.Rows() != orig.Rows() || restored.Total() != orig.Total() {
		t.Errorf("rows/total = %d/%v, want %d/%v", restored.Rows(), restored.Total(), orig.Rows(), orig.Total())
	}
	for _, b := range orig.Bins() {
		if got := restored.Estimate(b.Item); got != b.Count {
			t.Errorf("Estimate(%s) = %v, want %v", b.Item, got, b.Count)
		}
	}
	if err := restored.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Restored sketch keeps working.
	restored.Update("fresh")
	if restored.Rows() != orig.Rows()+1 {
		t.Error("restored sketch does not accept updates")
	}
}

func TestRestoreUnitValidation(t *testing.T) {
	fresh := func() *Sketch { return New(2, Unbiased, newRng(1)) }

	if err := RestoreUnit(fresh(), []Bin{{"a", 1}, {"b", 2}, {"c", 3}}, 6); err == nil {
		t.Error("over-capacity restore accepted")
	}
	if err := RestoreUnit(fresh(), []Bin{{"a", 1.5}}, 1); err == nil {
		t.Error("non-integral count accepted")
	}
	if err := RestoreUnit(fresh(), []Bin{{"a", -1}}, -1); err == nil {
		t.Error("negative count accepted")
	}
	if err := RestoreUnit(fresh(), []Bin{{"a", 2}}, 5); err == nil {
		t.Error("row/mass mismatch accepted")
	}
	s := fresh()
	s.Update("x")
	if err := RestoreUnit(s, []Bin{{"a", 1}}, 1); err == nil {
		t.Error("restore into non-empty sketch accepted")
	}
	// rows == 0 means recompute from mass.
	s2 := fresh()
	if err := RestoreUnit(s2, []Bin{{"a", 4}}, 0); err != nil {
		t.Fatal(err)
	}
	if s2.Rows() != 4 {
		t.Errorf("Rows = %d, want 4", s2.Rows())
	}
	// Zero-count bins are skipped.
	s3 := fresh()
	if err := RestoreUnit(s3, []Bin{{"a", 0}, {"b", 3}}, 3); err != nil {
		t.Fatal(err)
	}
	if s3.Size() != 1 {
		t.Errorf("Size = %d, want 1 (zero bin skipped)", s3.Size())
	}
}
