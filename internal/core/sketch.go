// Package core implements the Space-Saving family of sketches from
// "Data Sketches for Disaggregated Subset Sum and Frequent Item Estimation"
// (Daniel Ting, SIGMOD 2018), together with the merge reductions, variance
// estimator and time-decay generalizations the paper derives.
//
// The central type is Sketch, which runs Algorithm 1 of the paper in either
// of two modes:
//
//   - Deterministic: the classic Space Saving sketch of Metwally et al.
//     A row whose item is not tracked always steals the minimum bin's label.
//   - Unbiased: the paper's contribution. The label is stolen only with
//     probability 1/(Nmin+1), which makes every per-item estimated count an
//     unbiased estimator (Theorem 1) and therefore makes any subset-sum
//     query over the sketch unbiased.
//
// Unit-weight updates run in O(1) via the Stream-Summary structure
// (internal/streamsummary). Real-valued and decayed updates are provided by
// WeightedSketch, which trades the O(1) bucket list for an O(log m) heap.
//
// # Ownership and concurrency contracts
//
// Sketches are single-writer and unsynchronized: callers serialize
// mutation externally (uss.ShardedSketch packages the standard pattern).
// Both Sketch and WeightedSketch expose a Version counter that advances
// on every mutation; the cached read paths (internal/query engines,
// uss.ShardedSketch's snapshot cache, internal/rollup's merge tree)
// revalidate derived state against it rather than re-reading the sketch.
// Query-style results (Bins, TopK, SelectTop, the merge kernels) return
// freshly allocated, caller-owned slices; the Append* variants
// (AppendBins) write into a caller-supplied buffer instead and are the
// allocation-free path. Item strings are shared, never copied: a bin's
// Item is the same string the caller passed to Update (or, after a
// restore, a slice of the decoded arena — see internal/wire).
package core

import (
	"fmt"
	"math/rand"

	"repro/internal/streamsummary"
)

// Mode selects which Space-Saving variant a Sketch runs.
type Mode int

const (
	// Unbiased randomizes label replacement with probability 1/(Nmin+1)
	// (Ting 2018, Algorithm 1 with p = 1/(Nmin+1)).
	Unbiased Mode = iota
	// Deterministic always replaces the minimum bin's label (Metwally et
	// al. 2005; p = 1).
	Deterministic
)

func (m Mode) String() string {
	switch m {
	case Unbiased:
		return "unbiased"
	case Deterministic:
		return "deterministic"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Bin is one (item, estimated count) pair held by a sketch.
type Bin struct {
	Item  string
	Count float64
}

// Sketch is a Space-Saving sketch over unit-weight rows. It maintains at
// most m (item, count) bins; queries take the counts at face value
// (Estimate) or sum them under a predicate (SubsetSum).
//
// A Sketch is not safe for concurrent use; wrap it or shard streams and
// Merge the results.
type Sketch struct {
	mode    Mode
	m       int
	sum     *streamsummary.Summary
	rng     *rand.Rand
	rows    int64
	version uint64
}

// New returns a sketch with m bins running the given mode. rng supplies the
// randomization; it must be non-nil for Unbiased mode (Deterministic mode
// uses it only for tie-breaking among minimum bins and accepts nil, in which
// case ties break arbitrarily but deterministically).
func New(m int, mode Mode, rng *rand.Rand) *Sketch {
	if m <= 0 {
		panic(fmt.Sprintf("core: sketch size m = %d, want > 0", m))
	}
	if mode == Unbiased && rng == nil {
		panic("core: Unbiased sketch requires a random source")
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &Sketch{mode: mode, m: m, sum: streamsummary.New(m), rng: rng}
}

// Mode returns the sketch's variant.
func (s *Sketch) Mode() Mode { return s.mode }

// Capacity returns m, the maximum number of bins.
func (s *Sketch) Capacity() int { return s.m }

// Size returns the number of bins currently occupied (≤ Capacity).
func (s *Sketch) Size() int { return s.sum.Len() }

// Rows returns the number of rows processed, t in the paper's notation.
func (s *Sketch) Rows() int64 { return s.rows }

// Version returns a counter that advances on every mutation. Readers that
// cache derived structures (query indexes, merged snapshots) revalidate by
// comparing versions; an unchanged version guarantees unchanged bins. Like
// the sketch itself it is not synchronized — concurrent wrappers keep
// their own atomic counters.
func (s *Sketch) Version() uint64 { return s.version }

// Total returns the sum of all bin counts. For unit updates this equals
// Rows() exactly, in both modes — Space Saving never loses mass.
func (s *Sketch) Total() float64 { return float64(s.sum.Total()) }

// MinCount returns N̂min, the smallest bin count (0 while the sketch has
// spare capacity).
func (s *Sketch) MinCount() float64 {
	if s.sum.Len() < s.m {
		return 0
	}
	return float64(s.sum.MinCount())
}

// Update processes one row whose unit of analysis is item.
func (s *Sketch) Update(item string) {
	s.rows++
	s.version++
	if s.sum.Increment(item) {
		return
	}
	if s.sum.Len() < s.m {
		// Equivalent to incrementing one of the initial count-0 bins:
		// the replacement probability 1/(0+1) is 1 in both modes.
		s.sum.Insert(item, 1)
		return
	}
	if s.mode == Deterministic {
		s.sum.ReplaceRandomMin(item, s.rng)
		return
	}
	nmin := s.sum.MinCount()
	// Replace the label with probability 1/(Nmin+1); otherwise increment
	// a random minimum bin keeping its label. Both branches pick the bin
	// uniformly among ties, as required by the analysis in §6.1.
	if s.rng.Int63n(nmin+1) == 0 {
		s.sum.ReplaceRandomMin(item, s.rng)
	} else {
		s.sum.IncrementRandomMin(s.rng)
	}
}

// UpdateAll processes a batch of rows in order.
func (s *Sketch) UpdateAll(items []string) {
	for _, it := range items {
		s.Update(it)
	}
}

// UpdateGather processes the rows items[idx[0]], items[idx[1]], … in
// order: the scatter-free half of the sharded batch path. Callers group
// row indices by destination sketch and feed each group through the same
// per-row loop as UpdateAll without copying the row strings themselves.
func (s *Sketch) UpdateGather(items []string, idx []int32) {
	for _, j := range idx {
		s.Update(items[j])
	}
}

// Contains reports whether item currently labels a bin.
func (s *Sketch) Contains(item string) bool { return s.sum.Contains(item) }

// Estimate returns the estimated count N̂ᵢ for item: the bin count if the
// item is tracked and 0 otherwise. In Unbiased mode this is an unbiased
// estimate of the item's true count (Theorem 1). In Deterministic mode it
// overestimates by at most MinCount.
func (s *Sketch) Estimate(item string) float64 {
	c, ok := s.sum.Count(item)
	if !ok {
		return 0
	}
	return float64(c)
}

// Bounds returns deterministic lower and upper bounds for item's true count
// under Deterministic mode: count-Nmin ≤ nᵢ ≤ count. For untracked items
// the bounds are [0, Nmin]. (In Unbiased mode the same bounds hold only in
// expectation and Bounds is still reported for diagnostics.)
func (s *Sketch) Bounds(item string) (lo, hi float64) {
	nmin := s.MinCount()
	c, ok := s.sum.Count(item)
	if !ok {
		return 0, nmin
	}
	lo = float64(c) - nmin
	if lo < 0 {
		lo = 0
	}
	return lo, float64(c)
}

// Bins returns all bins in ascending count order.
func (s *Sketch) Bins() []Bin {
	raw := s.sum.Bins()
	out := make([]Bin, len(raw))
	for i, b := range raw {
		out[i] = Bin{Item: b.Item, Count: float64(b.Count)}
	}
	return out
}

// AppendBins appends all bins to dst in ascending count order and returns
// the extended slice. With a caller-reused dst this is the allocation-free
// variant of Bins, used by the steady-state wire encoder.
func (s *Sketch) AppendBins(dst []Bin) []Bin {
	s.sum.Each(func(item string, count int64) bool {
		dst = append(dst, Bin{Item: item, Count: float64(count)})
		return true
	})
	return dst
}

// TopK returns the k largest bins in descending count order (ties broken by
// item label for determinism). k larger than Size is truncated. The
// selection streams the bins through a bounded min-heap — O(m log k) and a
// single allocation, shared with every other top-k query (select.go).
func (s *Sketch) TopK(k int) []Bin {
	if k > s.Size() {
		k = s.Size()
	}
	sel := newTopSelector(k)
	s.sum.Each(func(item string, count int64) bool {
		sel.offer(Bin{Item: item, Count: float64(count)})
		return true
	})
	return sel.take()
}

// FrequentItems returns the bins whose estimated relative frequency
// count/Total exceeds phi, in descending count order. With Deterministic
// mode this is the classic heavy-hitters query; with Unbiased mode the
// counts are additionally unbiased. The threshold is applied during the
// scan, so only qualifying bins are sorted.
func (s *Sketch) FrequentItems(phi float64) []Bin {
	tot := s.Total()
	if tot == 0 {
		return nil
	}
	var out []Bin
	s.sum.Each(func(item string, count int64) bool {
		if float64(count)/tot > phi {
			out = append(out, Bin{Item: item, Count: float64(count)})
		}
		return true
	})
	sortBins(out)
	return out
}

// GuaranteedFrequent returns the bins whose deterministic lower bound
// count − N̂min already exceeds phi·Total — items that are certainly above
// the frequency threshold under Deterministic mode (Metwally et al.'s
// guaranteed top-k query). Under Unbiased mode the same bound holds in
// expectation and the returned set is a high-precision subset of
// FrequentItems. Results are in descending count order.
func (s *Sketch) GuaranteedFrequent(phi float64) []Bin {
	tot := s.Total()
	if tot == 0 {
		return nil
	}
	nmin := s.MinCount()
	var out []Bin
	s.sum.Each(func(item string, count int64) bool {
		if float64(count)-nmin > phi*tot {
			out = append(out, Bin{Item: item, Count: float64(count)})
		}
		return true
	})
	sortBins(out)
	return out
}

// SubsetSum estimates Σᵢ∈S nᵢ for the subset S defined by pred over item
// labels. The returned Estimate carries the paper's variance estimate
// (equation 5): V̂ar = N̂min² · C_S with C_S = max(1, #sketch items in S).
//
// In Unbiased mode the point estimate is unbiased for any S, even across
// pathological stream orders (Theorem 2); the variance estimate is upward
// biased by construction, so confidence intervals are conservative.
func (s *Sketch) SubsetSum(pred func(item string) bool) Estimate {
	var sum float64
	var hits int
	s.sum.Each(func(item string, count int64) bool {
		if pred(item) {
			sum += float64(count)
			hits++
		}
		return true
	})
	return newEstimate(sum, hits, s.MinCount())
}

// EstimateWithSE returns item's count estimate together with the single-item
// standard error implied by equation 5 (C_S = 1).
func (s *Sketch) EstimateWithSE(item string) Estimate {
	c, ok := s.sum.Count(item)
	hits := 0
	if ok {
		hits = 1
	}
	return newEstimate(float64(c), hits, s.MinCount())
}

// CheckInvariants verifies internal consistency; exported for tests.
func (s *Sketch) CheckInvariants() error {
	if err := s.sum.CheckInvariants(); err != nil {
		return err
	}
	if s.sum.Len() > s.m {
		return fmt.Errorf("sketch holds %d bins, capacity %d", s.sum.Len(), s.m)
	}
	if got, want := s.sum.Total(), s.rows; got != want {
		return fmt.Errorf("total mass %d, want %d rows", got, want)
	}
	return nil
}
