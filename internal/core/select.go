package core

import "sort"

// Partial top-k selection shared by every top-k query in the repo: the unit
// sketch (TopK, FrequentItems, GuaranteedFrequent), and the sharded
// sketch's post-merge TopK in the public package. A bounded min-heap of
// the k best candidates replaces both the full O(n log n) sort the unit
// sketch used to pay and the O(k·n) selection sort the sharded sketch used
// to pay, giving O(n log k) with a single output allocation.

// rankAbove reports whether a outranks b in top-k order: higher count
// first, ties broken by ascending item label for determinism.
func rankAbove(a, b Bin) bool {
	if a.Count != b.Count {
		return a.Count > b.Count
	}
	return a.Item < b.Item
}

// topSelector accumulates streamed bins, retaining the k highest-ranked.
// The heap is a min-heap under rankAbove: heap[0] is the weakest retained
// bin, evicted first when a stronger candidate arrives.
type topSelector struct {
	heap []Bin
	k    int
}

func newTopSelector(k int) topSelector {
	if k < 0 {
		k = 0
	}
	return topSelector{heap: make([]Bin, 0, k), k: k}
}

// offer considers one bin for the retained set. O(log k).
func (t *topSelector) offer(b Bin) {
	if t.k == 0 {
		return
	}
	if len(t.heap) < t.k {
		t.heap = append(t.heap, b)
		t.siftUp(len(t.heap) - 1)
		return
	}
	if rankAbove(b, t.heap[0]) {
		t.heap[0] = b
		t.siftDown(0)
	}
}

// take drains the selector, returning the retained bins in descending rank
// order (strongest first). The selector is spent afterwards.
func (t *topSelector) take() []Bin {
	out := t.heap
	for n := len(out) - 1; n > 0; n-- {
		out[0], out[n] = out[n], out[0]
		t.heap = out[:n]
		t.siftDown(0)
	}
	t.heap = nil
	return out
}

func (t *topSelector) siftUp(i int) {
	h := t.heap
	for i > 0 {
		parent := (i - 1) / 2
		if !rankAbove(h[parent], h[i]) {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

func (t *topSelector) siftDown(i int) {
	h := t.heap
	for {
		weakest := i
		if l := 2*i + 1; l < len(h) && rankAbove(h[weakest], h[l]) {
			weakest = l
		}
		if r := 2*i + 2; r < len(h) && rankAbove(h[weakest], h[r]) {
			weakest = r
		}
		if weakest == i {
			return
		}
		h[i], h[weakest] = h[weakest], h[i]
		i = weakest
	}
}

// sortBins sorts bins in place into descending rank order (count
// descending, ties by ascending item) — for callers that keep everything
// and only need the order, where a bounded heap would buy nothing.
func sortBins(bins []Bin) {
	sort.Slice(bins, func(i, j int) bool { return rankAbove(bins[i], bins[j]) })
}

// SelectTop returns the k highest-count bins in descending count order
// (ties broken by ascending item label), without modifying bins. k larger
// than len(bins) is truncated; the result is always a fresh slice.
func SelectTop(bins []Bin, k int) []Bin {
	if k > len(bins) {
		k = len(bins)
	}
	sel := newTopSelector(k)
	for _, b := range bins {
		sel.offer(b)
	}
	return sel.take()
}
