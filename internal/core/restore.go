package core

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/streamsummary"
)

// RestoreUnit loads serialized bins into s, which must be freshly
// constructed and empty. Counts must be non-negative integers (unit
// sketches only ever hold integral counts) and fit within s's capacity.
// rows should be the original sketch's row count; for unit sketches that
// always equals the total bin mass, and 0 is accepted as "recompute".
//
// The load is a single slab-building pass with one map store per bin
// (streamsummary.LoadDescending). Snapshots arrive in ascending count
// order — the order Bins/AppendBins emit and both wire formats preserve —
// so the descending feed is a reversal, not a sort; unordered input takes
// a sort fallback.
func RestoreUnit(s *Sketch, bins []Bin, rows int64) error {
	if s.Size() != 0 || s.rows != 0 {
		return fmt.Errorf("core: restore into non-empty sketch")
	}
	if len(bins) > s.m {
		return fmt.Errorf("core: %d bins exceed capacity %d", len(bins), s.m)
	}
	load := make([]streamsummary.Bin, 0, len(bins))
	var total int64
	ordered := true
	for i := len(bins) - 1; i >= 0; i-- {
		b := bins[i]
		// The upper bound also rejects +Inf and any value whose int64
		// conversion would overflow (float64(MaxInt64) == 2^63, itself
		// out of range); NaN fails the Trunc equality.
		if b.Count < 0 || b.Count >= math.MaxInt64 || b.Count != math.Trunc(b.Count) {
			return fmt.Errorf("core: bin %q has non-integral count %v", b.Item, b.Count)
		}
		if b.Count == 0 {
			continue
		}
		c := int64(b.Count)
		if n := len(load); n > 0 && c > load[n-1].Count {
			ordered = false
		}
		load = append(load, streamsummary.Bin{Item: b.Item, Count: c})
		total += c
	}
	if !ordered {
		sort.Slice(load, func(i, j int) bool { return load[i].Count > load[j].Count })
	}
	if err := s.sum.LoadDescending(load); err != nil {
		return fmt.Errorf("core: restore: %w", err)
	}
	if rows == 0 {
		rows = total
	}
	if rows != total {
		return fmt.Errorf("core: snapshot rows %d disagree with bin mass %d", rows, total)
	}
	s.rows = rows
	s.version++
	return nil
}

// RestoreWeighted loads serialized bins into s, which must be freshly
// constructed and empty, by building the bin heap directly: O(n) heap
// construction, no randomness drawn, no per-bin Update replay. Unlike the
// update path it keeps zero-count bins — their labels are sketch state
// (identity a reduction assigned to an emptied bin) that a replay through
// Update would silently drop. Counts must be non-negative and finite;
// duplicated items are rejected.
//
// rows should be the original sketch's Rows(); 0 falls back to the number
// of restored bins (the best reconstruction available from bins alone, and
// what the Update-replay path historically reported).
func RestoreWeighted(s *WeightedSketch, bins []Bin, rows int64) error {
	if len(s.h) != 0 || len(s.index) != 0 || s.rows != 0 {
		return fmt.Errorf("core: restore into non-empty sketch")
	}
	if len(bins) > s.m {
		return fmt.Errorf("core: %d bins exceed capacity %d", len(bins), s.m)
	}
	if rows < 0 {
		return fmt.Errorf("core: negative row count %d", rows)
	}
	// Validate every count before touching sketch state, so a rejected
	// snapshot leaves s empty and reusable.
	var total float64
	for _, b := range bins {
		if b.Count < 0 || math.IsNaN(b.Count) || math.IsInf(b.Count, 0) {
			return fmt.Errorf("core: bin %q has invalid count %v", b.Item, b.Count)
		}
		total += b.Count
	}
	h := make(wheap, 0, len(bins))
	for _, b := range bins {
		if _, dup := s.index[b.Item]; dup {
			clear(s.index) // roll back: leave s empty, not half-indexed
			return fmt.Errorf("core: snapshot lists %q twice", b.Item)
		}
		wb := &wbin{item: b.Item, count: b.Count, idx: len(h)}
		h = append(h, wb)
		s.index[b.Item] = wb
	}
	s.h = h
	heap.Init(&s.h) // sift-down construction; Swap keeps idx back-references
	s.total = total
	if rows == 0 {
		rows = int64(len(bins))
	}
	s.rows = rows
	s.version++
	return nil
}
