package core

import (
	"fmt"
	"math"
	"sort"
)

// RestoreUnit loads serialized bins into s, which must be freshly
// constructed and empty. Counts must be non-negative integers (unit
// sketches only ever hold integral counts) and fit within s's capacity.
// rows should be the original sketch's row count; for unit sketches that
// always equals the total bin mass, and 0 is accepted as "recompute".
func RestoreUnit(s *Sketch, bins []Bin, rows int64) error {
	if s.Size() != 0 || s.rows != 0 {
		return fmt.Errorf("core: restore into non-empty sketch")
	}
	if len(bins) > s.m {
		return fmt.Errorf("core: %d bins exceed capacity %d", len(bins), s.m)
	}
	// Feed counts descending: each insert is then a new minimum, the O(1)
	// path of the slab-backed summary.
	sorted := make([]Bin, len(bins))
	copy(sorted, bins)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Count > sorted[j].Count })
	var total int64
	for _, b := range sorted {
		if b.Count < 0 || b.Count != math.Trunc(b.Count) {
			return fmt.Errorf("core: bin %q has non-integral count %v", b.Item, b.Count)
		}
		if b.Count == 0 {
			continue
		}
		if s.sum.Contains(b.Item) {
			return fmt.Errorf("core: snapshot lists %q twice", b.Item)
		}
		c := int64(b.Count)
		s.sum.Insert(b.Item, c)
		total += c
	}
	if rows == 0 {
		rows = total
	}
	if rows != total {
		return fmt.Errorf("core: snapshot rows %d disagree with bin mass %d", rows, total)
	}
	s.rows = rows
	s.version++
	return nil
}
