package core

import (
	"fmt"
	"math"
	"testing"
)

func TestShrinkBasic(t *testing.T) {
	rng := newRng(3)
	s := NewWeighted(16, rng)
	for i := 0; i < 16; i++ {
		s.Update(fmt.Sprintf("i%d", i), float64(i+1))
	}
	totalBefore := s.Total()
	s.Shrink(6, PairwiseReduction)
	if s.Capacity() != 6 {
		t.Fatalf("capacity %d after shrink", s.Capacity())
	}
	if s.Size() > 6 {
		t.Fatalf("size %d after shrink", s.Size())
	}
	if math.Abs(s.Total()-totalBefore) > 1e-9 {
		t.Errorf("pairwise shrink changed total: %v → %v", totalBefore, s.Total())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Post-shrink updates work under the new capacity.
	for i := 0; i < 100; i++ {
		s.Update(fmt.Sprintf("new%d", i), 1)
		if s.Size() > 6 {
			t.Fatalf("capacity not enforced after shrink")
		}
	}
}

func TestShrinkUnbiased(t *testing.T) {
	rng := newRng(4)
	const reps = 40000
	sums := map[string]float64{}
	for r := 0; r < reps; r++ {
		s := NewWeighted(8, rng)
		for i := 0; i < 8; i++ {
			s.Update(fmt.Sprintf("i%d", i), float64(i+1))
		}
		s.Shrink(3, PairwiseReduction)
		for _, b := range s.Bins() {
			sums[b.Item] += b.Count
		}
	}
	for i := 0; i < 8; i++ {
		item := fmt.Sprintf("i%d", i)
		mean := sums[item] / reps
		if math.Abs(mean-float64(i+1)) > 0.15*36 { // tolerance vs total 36
			t.Errorf("E[post-shrink %s] = %.3f, want %d", item, mean, i+1)
		}
	}
}

func TestShrinkPivotalAndMisraGries(t *testing.T) {
	for _, kind := range []ReduceKind{PivotalReduction, MisraGriesReduction} {
		rng := newRng(5)
		s := NewWeighted(12, rng)
		for i := 0; i < 12; i++ {
			s.Update(fmt.Sprintf("i%d", i), float64(i+1))
		}
		s.Shrink(4, kind)
		if s.Size() > 4 || s.Capacity() != 4 {
			t.Errorf("%v: size/cap = %d/%d", kind, s.Size(), s.Capacity())
		}
		if err := s.CheckInvariants(); err != nil {
			t.Errorf("%v: %v", kind, err)
		}
	}
}

func TestShrinkNoOpWhenLarger(t *testing.T) {
	rng := newRng(6)
	s := NewWeighted(4, rng)
	s.Update("a", 1)
	s.Shrink(10, PairwiseReduction)
	if s.Capacity() != 10 || s.Estimate("a") != 1 {
		t.Errorf("shrink-to-larger wrong: cap %d", s.Capacity())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Shrink(0) did not panic")
			}
		}()
		s.Shrink(0, PairwiseReduction)
	}()
}

func TestGrow(t *testing.T) {
	rng := newRng(7)
	s := NewWeighted(2, rng)
	s.Update("a", 1)
	s.Update("b", 1)
	s.Grow(4)
	if s.Capacity() != 4 {
		t.Fatalf("capacity %d", s.Capacity())
	}
	s.Update("c", 1)
	s.Update("d", 1)
	if s.Size() != 4 {
		t.Errorf("size %d, want 4 exact bins after grow", s.Size())
	}
	for _, item := range []string{"a", "b", "c", "d"} {
		if s.Estimate(item) != 1 {
			t.Errorf("Estimate(%s) = %v", item, s.Estimate(item))
		}
	}
	s.Grow(2) // no-op shrinkwise
	if s.Capacity() != 4 {
		t.Errorf("Grow shrank capacity to %d", s.Capacity())
	}
}

func TestToWeighted(t *testing.T) {
	rng := newRng(8)
	s := New(8, Unbiased, rng)
	for i := 0; i < 500; i++ {
		s.Update(fmt.Sprintf("i%d", i%20))
	}
	w := s.ToWeighted()
	if w.Capacity() != s.Capacity() || w.Size() != s.Size() {
		t.Fatalf("converted size/cap mismatch")
	}
	if math.Abs(w.Total()-s.Total()) > 1e-9 {
		t.Errorf("converted total %v vs %v", w.Total(), s.Total())
	}
	for _, b := range s.Bins() {
		if got := w.Estimate(b.Item); got != b.Count {
			t.Errorf("converted Estimate(%s) = %v, want %v", b.Item, got, b.Count)
		}
	}
	// Independence: updating the conversion does not touch the original.
	w.Update("fresh", 5)
	if s.Contains("fresh") {
		t.Error("conversion shares state with the original")
	}
}
