package core

// Theory notes — how the implementation maps to the paper's results.
//
// Theorem 1 (unbiasedness of the streaming update). Sketch.Update realizes
// Algorithm 1: a tracked item's counter increments exactly; an untracked
// item bumps the minimum bin from N̂min to N̂min+1 and steals its label
// with probability 1/(N̂min+1). Conditioning on the pre-update state, the
// expected increment to any fixed item's estimate is exactly its indicator
// in the row, so N̂ᵢ(t) − nᵢ(t) is a martingale. The same one-line argument
// gives WeightedSketch.Update (steal with probability w/(N̂min+w)), the
// pairwise merge collapse in ReducePairwise (keep a label with probability
// proportional to its count), the Horvitz–Thompson-adjusted pivotal
// reduction in ReducePivotal, and Shrink. Theorem 2 is exactly this
// composition property and is what the merge/rollup/resize features rely
// on.
//
// Theorem 3 / Corollaries 4–5 (frequent items stick). The analysis needs
// the minimum bin to be chosen uniformly among ties; streamsummary's
// bucket representation provides an O(1) uniform draw from the minimum
// bucket (randomMin). The experiments package validates the stickiness
// transition empirically (theorem-3 driver).
//
// Theorem 9 (approximate PPS). Tail bins equalize at t/m + O(log²t), so a
// tail bin's label is a size-1 reservoir sample of the rows it absorbed;
// inclusion probabilities converge to min(1, α·nᵢ). The Figure-2 driver
// checks this against sampling.Probabilities.
//
// Theorem 10 (inclusion floor on adversarial orders). Tested directly in
// pathological_test.go on the theorem's own worst-case sequence, both the
// bound and its tightness.
//
// Equation 5 (variance estimate). newEstimate sets V̂ar(N̂_S) =
// N̂min²·max(1, C_S) with C_S the number of sketch bins matching the
// subset. The estimate is intentionally worst-case (upward biased): κ̂ for
// a non-sticky bin is bounded by a Geometric(1/N̂min) argument, and sticky
// bins contribute as if they were still randomized. Figure-9's driver
// confirms σ̂/σ ≈ 1 with the expected upward drift on extreme epochs, and
// Figure-8's that normal intervals from it reach nominal coverage wherever
// the CLT holds.
//
// Space/time (§6.7). Unit updates are O(1) worst-case via streamsummary;
// weighted, decayed and merged sketches pay O(log m) per update through a
// binary heap; queries are linear scans over the m bins.
