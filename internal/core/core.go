package core
