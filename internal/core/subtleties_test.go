package core

import (
	"fmt"
	"testing"
)

// TestConditionalUpwardBias documents the §4 remark: although every item's
// estimate is unconditionally unbiased, conditional on the item being IN
// the sketch its count is biased upward (untracked items report a
// downward-biased 0, so the tracked side must compensate).
func TestConditionalUpwardBias(t *testing.T) {
	// A mid-frequency item that is tracked only sometimes.
	var stream []string
	for i := 0; i < 10; i++ {
		stream = append(stream, "mid")
	}
	for i := 0; i < 190; i++ {
		stream = append(stream, fmt.Sprintf("n%d", i))
	}
	rng := newRng(17)
	const reps = 5000
	var sumAll, sumTracked float64
	tracked := 0
	for r := 0; r < reps; r++ {
		s := New(5, Unbiased, rng)
		perm := rng.Perm(len(stream))
		for _, i := range perm {
			s.Update(stream[i])
		}
		e := s.Estimate("mid")
		sumAll += e
		if s.Contains("mid") {
			sumTracked += e
			tracked++
		}
	}
	meanAll := sumAll / reps
	if meanAll < 8 || meanAll > 12 {
		t.Fatalf("unconditional mean %v, want ≈ 10", meanAll)
	}
	if tracked == 0 || tracked == reps {
		t.Fatalf("degenerate tracking rate %d/%d — test needs a sometimes-tracked item", tracked, reps)
	}
	meanTracked := sumTracked / float64(tracked)
	if meanTracked <= 10 {
		t.Errorf("conditional-on-tracked mean %v, §4 predicts upward bias (> 10)", meanTracked)
	}
}

// TestAllUniqueRows exercises the "most obvious pathological sequence"
// (§6.3): every row distinct. Deterministic Space Saving then holds exactly
// the last m items; the unbiased sketch holds a random sample (labels far
// from the stream's tail survive with positive probability).
func TestAllUniqueRows(t *testing.T) {
	const n = 2000
	const m = 10
	rows := make([]string, n)
	for i := range rows {
		rows[i] = fmt.Sprintf("u%d", i)
	}

	det := New(m, Deterministic, newRng(1))
	for _, r := range rows {
		det.Update(r)
	}
	for i := n - m; i < n; i++ {
		if !det.Contains(fmt.Sprintf("u%d", i)) {
			t.Errorf("deterministic sketch missing recent item u%d", i)
		}
	}

	// Unbiased: over replicates, early-half items appear in the sketch a
	// non-negligible fraction of the time (≈ m/2 of the bins hold
	// early-half labels in expectation, since all items are exchangeable
	// in count).
	rng := newRng(2)
	const reps = 400
	early := 0
	for r := 0; r < reps; r++ {
		u := New(m, Unbiased, rng)
		for _, row := range rows {
			u.Update(row)
		}
		for _, b := range u.Bins() {
			var idx int
			fmt.Sscanf(b.Item, "u%d", &idx)
			if idx < n/2 {
				early++
			}
		}
	}
	frac := float64(early) / float64(reps*m)
	if frac < 0.3 || frac > 0.7 {
		t.Errorf("early-half label fraction %v, want ≈ 0.5 (uniform reservoir over rows)", frac)
	}
}
