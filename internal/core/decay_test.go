package core

import (
	"fmt"
	"math"
	"testing"
)

func TestDecayedValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewDecayed(lambda<0) did not panic")
			}
		}()
		NewDecayed(4, -1, newRng(1))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("decayed Update(w<=0) did not panic")
			}
		}()
		d := NewDecayed(4, 0.1, newRng(1))
		d.Update("a", 0, 0)
	}()
}

func TestDecayZeroLambdaIsPlainCounting(t *testing.T) {
	d := NewDecayed(8, 0, newRng(1))
	for i := 0; i < 5; i++ {
		d.Update("a", float64(i), 1)
	}
	d.Update("b", 5, 2)
	if got := d.Estimate("a"); math.Abs(got-5) > 1e-9 {
		t.Errorf("Estimate(a) = %v, want 5", got)
	}
	if got := d.Estimate("b"); math.Abs(got-2) > 1e-9 {
		t.Errorf("Estimate(b) = %v, want 2", got)
	}
	if got := d.Total(); math.Abs(got-7) > 1e-9 {
		t.Errorf("Total = %v, want 7", got)
	}
}

// TestDecayMatchesBruteForce compares the sketch (with ample capacity, so
// no randomized reduction happens) against directly computed exponentially
// decayed sums.
func TestDecayMatchesBruteForce(t *testing.T) {
	const lambda = 0.25
	type row struct {
		item string
		at   float64
		w    float64
	}
	rows := []row{
		{"a", 0, 1}, {"b", 1, 2}, {"a", 2, 1}, {"c", 3, 5}, {"a", 7, 1}, {"b", 9, 4},
	}
	d := NewDecayed(16, lambda, newRng(1))
	for _, r := range rows {
		d.Update(r.item, r.at, r.w)
	}
	latest := 9.0
	want := map[string]float64{}
	for _, r := range rows {
		want[r.item] += r.w * math.Exp(-lambda*(latest-r.at))
	}
	for item, w := range want {
		if got := d.Estimate(item); math.Abs(got-w) > 1e-9*(1+w) {
			t.Errorf("Estimate(%s) = %v, want %v", item, got, w)
		}
	}
	var totWant float64
	for _, w := range want {
		totWant += w
	}
	if got := d.Total(); math.Abs(got-totWant) > 1e-9*(1+totWant) {
		t.Errorf("Total = %v, want %v", got, totWant)
	}
	e := d.SubsetSum(func(s string) bool { return s == "a" || s == "c" })
	if wantS := want["a"] + want["c"]; math.Abs(e.Value-wantS) > 1e-9*(1+wantS) {
		t.Errorf("SubsetSum = %v, want %v", e.Value, wantS)
	}
}

func TestDecayRecentDominatesOld(t *testing.T) {
	d := NewDecayed(4, 1.0, newRng(3))
	for i := 0; i < 100; i++ {
		d.Update("old", 0.001*float64(i), 1)
	}
	for i := 0; i < 10; i++ {
		d.Update("new", 50+float64(i), 1)
	}
	if d.Estimate("new") <= d.Estimate("old") {
		t.Errorf("decay failed: new=%v old=%v", d.Estimate("new"), d.Estimate("old"))
	}
}

// TestDecayRenormalization streams long enough in time that the internal
// exponent would overflow without renormalization; estimates must stay
// finite and correct relative to each other.
func TestDecayRenormalization(t *testing.T) {
	const lambda = 1.0
	d := NewDecayed(8, lambda, newRng(4))
	// Arrival times spanning 500 time units: e^500 overflows float64, so
	// renormalization must kick in.
	for i := 0; i < 1000; i++ {
		d.Update(fmt.Sprintf("i%d", i%4), float64(i)/2, 1)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	tot := d.Total()
	if math.IsInf(tot, 0) || math.IsNaN(tot) || tot <= 0 {
		t.Fatalf("Total = %v after long decayed stream", tot)
	}
	// With λ=1 and rows every 0.5 time units round-robin over 4 items,
	// item j's rows sit at times j/2, 2+j/2, 4+j/2, …, 498+j/2 and the
	// latest arrival is at 499.5, so the decayed count converges to
	// exp(−(1.5 − j/2)) · Σ_k exp(−2k) = exp(−(1.5 − j/2))/(1−e⁻²).
	for j := 0; j < 4; j++ {
		want := math.Exp(-(1.5 - 0.5*float64(j))) / (1 - math.Exp(-2))
		got := d.Estimate(fmt.Sprintf("i%d", j))
		if math.Abs(got-want) > 1e-6*(1+want) {
			t.Errorf("Estimate(i%d) = %v, want %v", j, got, want)
		}
	}
	if d.Size() != 4 {
		t.Errorf("Size = %d, want 4", d.Size())
	}
	if d.Lambda() != lambda {
		t.Errorf("Lambda = %v", d.Lambda())
	}
	if got := len(d.Bins()); got != 4 {
		t.Errorf("Bins len = %d", got)
	}
}
