package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestNewValidation(t *testing.T) {
	for _, m := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", m)
				}
			}()
			New(m, Unbiased, newRng(1))
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New(Unbiased, nil rng) did not panic")
			}
		}()
		New(4, Unbiased, nil)
	}()
	// Deterministic mode accepts a nil rng.
	s := New(4, Deterministic, nil)
	s.Update("a")
	if s.Estimate("a") != 1 {
		t.Error("deterministic sketch with nil rng broken")
	}
}

func TestModeString(t *testing.T) {
	if Unbiased.String() != "unbiased" || Deterministic.String() != "deterministic" {
		t.Error("Mode.String wrong")
	}
	if Mode(42).String() != "Mode(42)" {
		t.Error("unknown Mode.String wrong")
	}
}

func TestExactWhenUnderCapacity(t *testing.T) {
	for _, mode := range []Mode{Unbiased, Deterministic} {
		s := New(10, mode, newRng(1))
		truth := map[string]float64{}
		for i := 0; i < 5; i++ {
			item := fmt.Sprintf("i%d", i)
			for j := 0; j <= i; j++ {
				s.Update(item)
				truth[item]++
			}
		}
		for item, want := range truth {
			if got := s.Estimate(item); got != want {
				t.Errorf("%v: Estimate(%s) = %v, want %v", mode, item, got, want)
			}
		}
		if s.MinCount() != 0 {
			t.Errorf("%v: MinCount = %v with spare capacity, want 0", mode, s.MinCount())
		}
		if s.Size() != 5 {
			t.Errorf("%v: Size = %d, want 5", mode, s.Size())
		}
	}
}

func TestTotalMassPreserved(t *testing.T) {
	for _, mode := range []Mode{Unbiased, Deterministic} {
		rng := newRng(5)
		s := New(8, mode, rng)
		const n = 5000
		for i := 0; i < n; i++ {
			s.Update(fmt.Sprintf("i%d", rng.Intn(200)))
		}
		if got := s.Total(); got != n {
			t.Errorf("%v: Total = %v after %d rows", mode, got, n)
		}
		if got := s.Rows(); got != n {
			t.Errorf("%v: Rows = %d, want %d", mode, got, n)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Errorf("%v: %v", mode, err)
		}
	}
}

func TestSizeNeverExceedsCapacity(t *testing.T) {
	rng := newRng(6)
	s := New(16, Unbiased, rng)
	for i := 0; i < 10000; i++ {
		s.Update(fmt.Sprintf("i%d", rng.Intn(1000)))
		if s.Size() > s.Capacity() {
			t.Fatalf("size %d exceeds capacity %d", s.Size(), s.Capacity())
		}
	}
}

// TestUnbiasedness is the paper's Theorem 1: for any fixed item, the
// estimated count is unbiased. We run many independent sketches over a
// fixed stream that overflows capacity and check the Monte-Carlo mean
// against the truth with a z-test.
func TestUnbiasedness(t *testing.T) {
	// Stream: item "hot" appears 30 times, 40 singletons, interleaved so
	// hot items arrive early (worst case for staying in the sketch).
	var stream []string
	for i := 0; i < 30; i++ {
		stream = append(stream, "hot")
	}
	for i := 0; i < 40; i++ {
		stream = append(stream, fmt.Sprintf("cold%d", i))
	}
	targets := map[string]float64{"hot": 30, "cold7": 1, "cold39": 1}

	const reps = 4000
	rng := newRng(42)
	sums := map[string]float64{}
	sumsq := map[string]float64{}
	for r := 0; r < reps; r++ {
		s := New(5, Unbiased, rng)
		// A fresh shuffle each rep: unbiasedness holds for any order,
		// and shuffling exercises many orders.
		perm := rng.Perm(len(stream))
		for _, i := range perm {
			s.Update(stream[i])
		}
		for item := range targets {
			e := s.Estimate(item)
			sums[item] += e
			sumsq[item] += e * e
		}
	}
	for item, truth := range targets {
		mean := sums[item] / reps
		varr := sumsq[item]/reps - mean*mean
		se := math.Sqrt(varr / reps)
		z := math.Abs(mean-truth) / se
		if z > 4.5 {
			t.Errorf("Estimate(%s): mean %.3f vs truth %.0f, |z| = %.1f", item, mean, truth, z)
		}
	}
}

// TestUnbiasednessExactTinyStream enumerates the martingale directly: for a
// two-bin sketch and a three-row stream, compare the Monte-Carlo mean to
// the exactly computed expectation.
func TestUnbiasednessExactTinyStream(t *testing.T) {
	// Stream: a, b, c with m = 2. After a,b the sketch is {a:1, b:1}.
	// Row c hits a random min bin (each w.p. 1/2), increments it to 2,
	// and relabels to c w.p. 1/2. So E[N̂_c] = 2·(1/2) = 1 = truth, and
	// E[N̂_a] = 1 (untouched w.p. 1/2; touched-and-kept w.p. 1/4 → 2;
	// relabeled w.p. 1/4 → 0) = 1/2·1 + 1/4·2 + 1/4·0 = 1. ✓ truth.
	const reps = 200000
	rng := newRng(9)
	var sumA, sumC float64
	for r := 0; r < reps; r++ {
		s := New(2, Unbiased, rng)
		s.Update("a")
		s.Update("b")
		s.Update("c")
		sumA += s.Estimate("a")
		sumC += s.Estimate("c")
	}
	if got := sumA / reps; math.Abs(got-1) > 0.01 {
		t.Errorf("E[N̂_a] = %.4f, want 1", got)
	}
	if got := sumC / reps; math.Abs(got-1) > 0.01 {
		t.Errorf("E[N̂_c] = %.4f, want 1", got)
	}
}

func TestDeterministicErrorBound(t *testing.T) {
	// Classic Space Saving guarantee: for every item,
	// truth ≤ estimate (if tracked) ≤ truth + ntot/m, and untracked
	// items have truth ≤ Nmin ≤ ntot/m.
	rng := newRng(12)
	s := New(20, Deterministic, rng)
	truth := map[string]int{}
	const n = 20000
	zipf := rand.NewZipf(rng, 1.3, 1, 500)
	var stream []string
	for i := 0; i < n; i++ {
		item := fmt.Sprintf("i%d", zipf.Uint64())
		stream = append(stream, item)
		truth[item]++
	}
	for _, it := range stream {
		s.Update(it)
	}
	bound := float64(n) / float64(s.Capacity())
	for item, tc := range truth {
		est := s.Estimate(item)
		if s.Contains(item) {
			if est < float64(tc) {
				t.Errorf("deterministic underestimates tracked %s: %v < %d", item, est, tc)
			}
			if est > float64(tc)+bound {
				t.Errorf("deterministic overestimates %s: %v > %d + %v", item, est, tc, bound)
			}
		} else if float64(tc) > s.MinCount() {
			t.Errorf("untracked item %s has truth %d > Nmin %v", item, tc, s.MinCount())
		}
	}
}

func TestFrequentItemsEventuallySticky(t *testing.T) {
	// Theorem 3: p1 > 1/m means item 1 is in the sketch eventually.
	// With p1 = 0.3, m = 10, and a long i.i.d. stream, the hot item must
	// be tracked at the end with near-exact count.
	rng := newRng(33)
	s := New(10, Unbiased, rng)
	hot := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.3 {
			s.Update("hot")
			hot++
		} else {
			s.Update(fmt.Sprintf("tail%d", rng.Intn(5000)))
		}
	}
	if !s.Contains("hot") {
		t.Fatal("frequent item not tracked after long i.i.d. stream")
	}
	est := s.Estimate("hot")
	if rel := math.Abs(est-float64(hot)) / float64(hot); rel > 0.05 {
		t.Errorf("frequent item estimate %v vs truth %d (rel err %.3f)", est, hot, rel)
	}
}

func TestSubsetSumMatchesBins(t *testing.T) {
	rng := newRng(2)
	s := New(32, Unbiased, rng)
	for i := 0; i < 3000; i++ {
		s.Update(fmt.Sprintf("i%d", rng.Intn(100)))
	}
	all := s.SubsetSum(func(string) bool { return true })
	if all.Value != s.Total() {
		t.Errorf("SubsetSum(all) = %v, Total = %v", all.Value, s.Total())
	}
	if all.SampleBins != s.Size() {
		t.Errorf("SubsetSum(all).SampleBins = %d, Size = %d", all.SampleBins, s.Size())
	}
	none := s.SubsetSum(func(string) bool { return false })
	if none.Value != 0 || none.SampleBins != 0 {
		t.Errorf("SubsetSum(none) = %+v", none)
	}
	// Empty subsets still get a nonzero (worst-case) standard error.
	if none.StdErr != s.MinCount() {
		t.Errorf("SubsetSum(none).StdErr = %v, want Nmin = %v", none.StdErr, s.MinCount())
	}
}

func TestEstimateWithSE(t *testing.T) {
	rng := newRng(2)
	s := New(4, Unbiased, rng)
	for i := 0; i < 100; i++ {
		s.Update(fmt.Sprintf("i%d", rng.Intn(20)))
	}
	bins := s.Bins()
	e := s.EstimateWithSE(bins[0].Item)
	if e.Value != bins[0].Count {
		t.Errorf("EstimateWithSE value %v, want %v", e.Value, bins[0].Count)
	}
	if e.SampleBins != 1 {
		t.Errorf("SampleBins = %d, want 1", e.SampleBins)
	}
	if e.StdErr != s.MinCount() {
		t.Errorf("StdErr = %v, want Nmin %v", e.StdErr, s.MinCount())
	}
	miss := s.EstimateWithSE("absent")
	if miss.Value != 0 || miss.SampleBins != 0 {
		t.Errorf("EstimateWithSE(absent) = %+v", miss)
	}
}

func TestTopKOrderingAndTruncation(t *testing.T) {
	rng := newRng(4)
	s := New(8, Unbiased, rng)
	for i := 0; i < 500; i++ {
		s.Update(fmt.Sprintf("i%d", rng.Intn(10)))
	}
	top := s.TopK(3)
	if len(top) != 3 {
		t.Fatalf("TopK(3) returned %d bins", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Count > top[i-1].Count {
			t.Errorf("TopK not descending: %v", top)
		}
	}
	if got := s.TopK(100); len(got) != s.Size() {
		t.Errorf("TopK(100) returned %d, want Size %d", len(got), s.Size())
	}
}

func TestFrequentItems(t *testing.T) {
	rng := newRng(4)
	s := New(10, Unbiased, rng)
	for i := 0; i < 600; i++ {
		s.Update("dominant")
	}
	for i := 0; i < 400; i++ {
		s.Update(fmt.Sprintf("i%d", rng.Intn(50)))
	}
	freq := s.FrequentItems(0.5)
	if len(freq) != 1 || freq[0].Item != "dominant" {
		t.Errorf("FrequentItems(0.5) = %v, want [dominant]", freq)
	}
	if got := s.FrequentItems(0.999); len(got) != 0 {
		t.Errorf("FrequentItems(0.999) = %v, want empty", got)
	}
	empty := New(4, Unbiased, newRng(1))
	if got := empty.FrequentItems(0.1); got != nil {
		t.Errorf("FrequentItems on empty sketch = %v", got)
	}
}

func TestBounds(t *testing.T) {
	rng := newRng(8)
	s := New(4, Deterministic, rng)
	for i := 0; i < 200; i++ {
		s.Update(fmt.Sprintf("i%d", rng.Intn(20)))
	}
	nmin := s.MinCount()
	lo, hi := s.Bounds("absent")
	if lo != 0 || hi != nmin {
		t.Errorf("Bounds(absent) = [%v,%v], want [0,%v]", lo, hi, nmin)
	}
	bins := s.Bins()
	top := bins[len(bins)-1]
	lo, hi = s.Bounds(top.Item)
	if hi != top.Count {
		t.Errorf("Bounds hi = %v, want %v", hi, top.Count)
	}
	if lo != math.Max(0, top.Count-nmin) {
		t.Errorf("Bounds lo = %v, want %v", lo, top.Count-nmin)
	}
}

func TestBinsAscending(t *testing.T) {
	rng := newRng(10)
	s := New(16, Unbiased, rng)
	for i := 0; i < 2000; i++ {
		s.Update(fmt.Sprintf("i%d", rng.Intn(100)))
	}
	bins := s.Bins()
	for i := 1; i < len(bins); i++ {
		if bins[i].Count < bins[i-1].Count {
			t.Fatalf("Bins not ascending: %v then %v", bins[i-1], bins[i])
		}
	}
}

func TestMinCountMonotoneOnOverflowingStream(t *testing.T) {
	rng := newRng(14)
	s := New(8, Unbiased, rng)
	var prev float64
	for i := 0; i < 5000; i++ {
		s.Update(fmt.Sprintf("i%d", i)) // all distinct: constant turnover
		if mc := s.MinCount(); mc < prev {
			t.Fatalf("MinCount decreased from %v to %v at row %d", prev, mc, i)
		} else {
			prev = mc
		}
	}
}

// TestAdversarialTheorem11 reproduces the robustness result: for a stream
// of v items followed by ntot distinct noise rows, Deterministic Space
// Saving estimates 0 for every real item (when all nᵢ < 2·ntot/m), while
// Unbiased Space Saving keeps unbiased (nonzero on average) estimates.
func TestAdversarialTheorem11(t *testing.T) {
	const m = 10
	// 40 items × 25 rows = 1000 = ntot, each nᵢ = 25 < 2·1000/10 = 200.
	var stream []string
	for i := 0; i < 40; i++ {
		for j := 0; j < 25; j++ {
			stream = append(stream, fmt.Sprintf("real%d", i))
		}
	}
	for j := 0; j < 1000; j++ {
		stream = append(stream, fmt.Sprintf("noise%d", j))
	}

	det := New(m, Deterministic, newRng(1))
	for _, it := range stream {
		det.Update(it)
	}
	for i := 0; i < 40; i++ {
		if est := det.Estimate(fmt.Sprintf("real%d", i)); est != 0 {
			t.Errorf("deterministic Estimate(real%d) = %v, theorem 11 predicts 0", i, est)
		}
	}

	// Unbiased: average estimate of the real-item subset should stay near
	// its true total 1000 (the noise merely halves the effective sample).
	rng := newRng(77)
	const reps = 300
	var sum float64
	for r := 0; r < reps; r++ {
		u := New(m, Unbiased, rng)
		for _, it := range stream {
			u.Update(it)
		}
		sum += u.SubsetSum(func(item string) bool { return len(item) > 4 && item[:4] == "real" }).Value
	}
	mean := sum / reps
	if mean < 800 || mean > 1200 {
		t.Errorf("unbiased subset mean = %v, want ≈ 1000", mean)
	}
}

// TestQuickInvariants property-tests structural invariants over arbitrary
// short streams in both modes.
func TestQuickInvariants(t *testing.T) {
	f := func(seed int64, items []uint8, det bool) bool {
		mode := Unbiased
		if det {
			mode = Deterministic
		}
		s := New(4, mode, newRng(seed))
		for _, b := range items {
			s.Update(fmt.Sprintf("i%d", b%32))
		}
		if err := s.CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		return s.Total() == float64(len(items)) && s.Size() <= 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateAll(t *testing.T) {
	s := New(4, Unbiased, newRng(3))
	s.UpdateAll([]string{"a", "b", "a"})
	if s.Estimate("a") != 2 || s.Estimate("b") != 1 {
		t.Errorf("UpdateAll counts wrong: a=%v b=%v", s.Estimate("a"), s.Estimate("b"))
	}
}
