package core

import "sync"

// Structure-of-arrays bin storage for the parallel merge kernels. The
// k-way shard merge compares counts on almost every step and touches
// items only to break ties and to emit output, so splitting []Bin's
// interleaved (string, float64) pairs into a separate count array keeps
// the compare loop walking dense float64 memory: an 8-byte stride
// instead of a 24-byte one, no string headers dragged through the cache,
// and a branch-light inner loop whose bounds checks the compiler can
// hoist (dst is pre-sized to len(a)+len(b) and indexed by a single
// monotone cursor).

// soaRun is a bin run in structure-of-arrays layout: counts[i] and
// items[i] describe one bin. Runs are kept in ascending (count, item)
// order, the same canonical order []Bin kernels use.
type soaRun struct {
	counts []float64
	items  []string
}

// grow resets the run to length 0 with capacity for at least n bins,
// reusing prior backing arrays when large enough.
func (r *soaRun) grow(n int) {
	if cap(r.counts) < n {
		r.counts = make([]float64, 0, n)
		r.items = make([]string, 0, n)
	}
	r.counts = r.counts[:0]
	r.items = r.items[:0]
}

// fromDisjoint k-way merges item-disjoint ascending bin lists into r,
// mirroring SumDisjointAscending's cursor min-heap exactly so the emitted
// order is the same unique (count, item)-ascending sequence.
func (r *soaRun) fromDisjoint(lists [][]Bin, n int) {
	r.grow(n)
	live := 0
	for _, l := range lists {
		if len(l) > 0 {
			live++
		}
	}
	if live == 0 {
		return
	}
	if live == 1 {
		for _, l := range lists {
			for _, b := range l {
				r.counts = append(r.counts, b.Count)
				r.items = append(r.items, b.Item)
			}
		}
		return
	}
	k := kmerge{lists: lists, cur: make([]int, len(lists)), heap: make([]int32, 0, live)}
	for i, l := range lists {
		if len(l) > 0 {
			k.heap = append(k.heap, int32(i))
		}
	}
	for i := len(k.heap)/2 - 1; i >= 0; i-- {
		k.down(i)
	}
	for len(k.heap) > 0 {
		li := k.heap[0]
		b := k.lists[li][k.cur[li]]
		r.counts = append(r.counts, b.Count)
		r.items = append(r.items, b.Item)
		k.cur[li]++
		if k.cur[li] == len(k.lists[li]) {
			last := len(k.heap) - 1
			k.heap[0] = k.heap[last]
			k.heap = k.heap[:last]
		}
		k.down(0)
	}
}

// mergeSoA merges ascending runs a and b into dst (reset and re-sized to
// hold both). Ties on count break by item; with item-disjoint inputs the
// combined (count, item) keys are all distinct, so the output order is
// the unique ascending sort of the union — the same sequence any other
// merge order produces. The hot loop indexes three pre-sized slices with
// monotone cursors and performs one float64 compare per step in the
// common (distinct counts) case.
func mergeSoA(dst, a, b *soaRun) {
	n := len(a.counts) + len(b.counts)
	dst.grow(n)
	dc, di := dst.counts[:n], dst.items[:n]
	ac, ai := a.counts, a.items
	bc, bi := b.counts, b.items
	i, j, k := 0, 0, 0
	for i < len(ac) && j < len(bc) {
		if bc[j] < ac[i] || (bc[j] == ac[i] && bi[j] < ai[i]) {
			dc[k], di[k] = bc[j], bi[j]
			j++
		} else {
			dc[k], di[k] = ac[i], ai[i]
			i++
		}
		k++
	}
	for ; i < len(ac); i++ {
		dc[k], di[k] = ac[i], ai[i]
		k++
	}
	for ; j < len(bc); j++ {
		dc[k], di[k] = bc[j], bi[j]
		k++
	}
	dst.counts, dst.items = dc, di
}

// appendBins converts the run back to the interleaved []Bin layout.
func (r *soaRun) appendBins(dst []Bin) []Bin {
	for i, c := range r.counts {
		dst = append(dst, Bin{Item: r.items[i], Count: c})
	}
	return dst
}

// soaPool recycles runs across parallel merges so a steady-state snapshot
// refill allocates only its final []Bin output.
var soaPool = sync.Pool{New: func() any { return new(soaRun) }}

// maxRetainedSoABins caps the per-run capacity the pool retains.
const maxRetainedSoABins = 1 << 17

func getSoA() *soaRun { return soaPool.Get().(*soaRun) }

func putSoA(r *soaRun) {
	if cap(r.counts) > maxRetainedSoABins {
		return
	}
	// Drop string references so pooled scratch doesn't pin old snapshots.
	items := r.items[:cap(r.items)]
	clear(items)
	r.counts = r.counts[:0]
	r.items = r.items[:0]
	soaPool.Put(r)
}
