package core

import (
	"fmt"
	"math"
	"testing"
)

func mkBins(counts ...float64) []Bin {
	out := make([]Bin, len(counts))
	for i, c := range counts {
		out[i] = Bin{Item: fmt.Sprintf("b%d", i), Count: c}
	}
	return out
}

func totalOf(bins []Bin) float64 {
	var s float64
	for _, b := range bins {
		s += b.Count
	}
	return s
}

func TestReducePairwisePreservesTotalExactly(t *testing.T) {
	rng := newRng(5)
	bins := mkBins(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	out := ReducePairwise(bins, 4, rng)
	if len(out) != 4 {
		t.Fatalf("reduced to %d bins, want 4", len(out))
	}
	if got, want := totalOf(out), totalOf(bins); got != want {
		t.Errorf("total %v, want %v (exact)", got, want)
	}
	for i := 1; i < len(out); i++ {
		if out[i].Count < out[i-1].Count {
			t.Errorf("output not ascending: %v", out)
		}
	}
}

func TestReducePairwiseNoOpWhenSmall(t *testing.T) {
	rng := newRng(5)
	bins := mkBins(1, 2)
	out := ReducePairwise(bins, 5, rng)
	if len(out) != 2 {
		t.Fatalf("ReducePairwise grew/shrank: %v", out)
	}
}

// TestReducePairwiseUnbiased verifies E[post] = pre for each item over many
// replicates (Theorem 2 hypothesis).
func TestReducePairwiseUnbiased(t *testing.T) {
	rng := newRng(6)
	bins := mkBins(1, 2, 3, 10, 20)
	const reps = 60000
	sums := map[string]float64{}
	for r := 0; r < reps; r++ {
		for _, b := range ReducePairwise(bins, 2, rng) {
			sums[b.Item] += b.Count
		}
	}
	for _, b := range bins {
		mean := sums[b.Item] / reps
		if math.Abs(mean-b.Count) > 0.05*totalOf(bins) {
			t.Errorf("E[post] for %s = %.3f, want %.0f", b.Item, mean, b.Count)
		}
	}
}

func TestReducePivotalSizeAndUnbiasedness(t *testing.T) {
	rng := newRng(8)
	bins := mkBins(1, 2, 3, 4, 100) // the 100 should always survive (π=1)
	const m = 3
	const reps = 60000
	sums := map[string]float64{}
	for r := 0; r < reps; r++ {
		out := ReducePivotal(bins, m, rng)
		if len(out) != m {
			t.Fatalf("pivotal produced %d bins, want %d", len(out), m)
		}
		found := false
		for _, b := range out {
			sums[b.Item] += b.Count
			if b.Item == "b4" {
				found = true
				if b.Count != 100 {
					t.Fatalf("certain bin HT-adjusted: %v", b.Count)
				}
			}
		}
		if !found {
			t.Fatal("certain bin (count 100) dropped by pivotal reduction")
		}
	}
	for _, b := range bins {
		mean := sums[b.Item] / reps
		if math.Abs(mean-b.Count) > 0.05*b.Count+0.2 {
			t.Errorf("pivotal E[post] for %s = %.3f, want %.0f", b.Item, mean, b.Count)
		}
	}
}

func TestReducePivotalNoOpWhenSmall(t *testing.T) {
	rng := newRng(8)
	bins := mkBins(5, 6)
	out := ReducePivotal(bins, 4, rng)
	if len(out) != 2 || totalOf(out) != 11 {
		t.Fatalf("pivotal no-op wrong: %v", out)
	}
}

func TestReduceMisraGries(t *testing.T) {
	bins := mkBins(1, 2, 3, 4, 10)
	out := ReduceMisraGries(bins, 2)
	// Sorted descending: 10,4,3,2,1; threshold = 3rd largest = 3.
	// Survivors: 10−3=7, 4−3=1.
	if len(out) != 2 {
		t.Fatalf("MG reduce kept %d bins, want 2", len(out))
	}
	if out[0].Count != 1 || out[1].Count != 7 {
		t.Errorf("MG reduce = %v, want counts 1 and 7", out)
	}
	// Every output is ≤ its input count (downward bias).
	in := map[string]float64{}
	for _, b := range bins {
		in[b.Item] = b.Count
	}
	for _, b := range out {
		if b.Count > in[b.Item] {
			t.Errorf("MG increased %s: %v > %v", b.Item, b.Count, in[b.Item])
		}
	}
}

func TestReduceMisraGriesDropsTies(t *testing.T) {
	bins := mkBins(5, 5, 5)
	out := ReduceMisraGries(bins, 2)
	// Threshold = 5 ⇒ everything zeroes out.
	if len(out) != 0 {
		t.Errorf("MG reduce of equal bins = %v, want empty", out)
	}
}

func TestInclusionProbabilities(t *testing.T) {
	vals := []float64{1, 1, 10}
	pi := InclusionProbabilities(vals, 2)
	// The paper's example (§5.1): with values 1,1,10 and k=2, the big
	// item is certain and α = 1/2 over the remaining mass 2.
	if pi[2] != 1 {
		t.Errorf("π(10) = %v, want 1", pi[2])
	}
	if math.Abs(pi[0]-0.5) > 1e-12 || math.Abs(pi[1]-0.5) > 1e-12 {
		t.Errorf("π(1) = %v,%v, want 0.5", pi[0], pi[1])
	}
	var sum float64
	for _, p := range pi {
		sum += p
	}
	if math.Abs(sum-2) > 1e-9 {
		t.Errorf("Σπ = %v, want 2", sum)
	}
}

func TestInclusionProbabilitiesEdgeCases(t *testing.T) {
	// k ≥ #positive: everything certain, zeros stay zero.
	pi := InclusionProbabilities([]float64{3, 0, 5}, 7)
	if pi[0] != 1 || pi[1] != 0 || pi[2] != 1 {
		t.Errorf("π = %v, want [1 0 1]", pi)
	}
	// Uniform values: all equal k/n.
	pi = InclusionProbabilities([]float64{2, 2, 2, 2}, 2)
	for i, p := range pi {
		if math.Abs(p-0.5) > 1e-12 {
			t.Errorf("π[%d] = %v, want 0.5", i, p)
		}
	}
	// Heavy skew: multiple certain items.
	pi = InclusionProbabilities([]float64{100, 100, 1, 1}, 3)
	if pi[0] != 1 || pi[1] != 1 {
		t.Errorf("heavy items not certain: %v", pi)
	}
	if math.Abs(pi[2]-0.5) > 1e-12 || math.Abs(pi[3]-0.5) > 1e-12 {
		t.Errorf("tail π = %v, want 0.5 each", pi[2:])
	}
}

func TestMergeBinsKinds(t *testing.T) {
	rng := newRng(9)
	a := []Bin{{"x", 3}, {"y", 1}}
	b := []Bin{{"x", 2}, {"z", 4}}
	for _, kind := range []ReduceKind{PairwiseReduction, PivotalReduction, MisraGriesReduction} {
		out := MergeBins(10, kind, rng, a, b)
		// Capacity is generous: merge must be exact.
		got := map[string]float64{}
		for _, bin := range out {
			got[bin.Item] = bin.Count
		}
		if got["x"] != 5 || got["y"] != 1 || got["z"] != 4 {
			t.Errorf("%v: exact merge wrong: %v", kind, got)
		}
	}
}

func TestMergeSketchesUnbiased(t *testing.T) {
	// Two shards with overlapping items; merged subset sums should be
	// unbiased across replicates.
	shard1 := make([]string, 0, 300)
	shard2 := make([]string, 0, 300)
	for i := 0; i < 20; i++ {
		for j := 0; j <= i; j++ {
			shard1 = append(shard1, fmt.Sprintf("i%d", i))
		}
	}
	for i := 10; i < 30; i++ {
		for j := 0; j < 5; j++ {
			shard2 = append(shard2, fmt.Sprintf("i%d", i))
		}
	}
	truth := map[string]float64{}
	for _, it := range shard1 {
		truth[it]++
	}
	for _, it := range shard2 {
		truth[it]++
	}
	pred := func(s string) bool { return s == "i15" || s == "i25" }
	want := truth["i15"] + truth["i25"]

	rng := newRng(99)
	const reps = 3000
	var sum float64
	for r := 0; r < reps; r++ {
		s1 := New(8, Unbiased, rng)
		s2 := New(8, Unbiased, rng)
		p1, p2 := rng.Perm(len(shard1)), rng.Perm(len(shard2))
		for _, i := range p1 {
			s1.Update(shard1[i])
		}
		for _, i := range p2 {
			s2.Update(shard2[i])
		}
		merged := MergeSketches(8, PairwiseReduction, rng, s1, s2)
		if merged.Size() > 8 {
			t.Fatalf("merged size %d > 8", merged.Size())
		}
		sum += merged.SubsetSum(pred).Value
	}
	mean := sum / reps
	if math.Abs(mean-want) > 0.15*want {
		t.Errorf("merged subset mean %v, want ≈ %v", mean, want)
	}
}

func TestMergeWeighted(t *testing.T) {
	rng := newRng(4)
	s1 := NewWeighted(4, rng)
	s2 := NewWeighted(4, rng)
	s1.Update("a", 2.5)
	s2.Update("a", 1.5)
	s2.Update("b", 3)
	merged := MergeWeighted(4, PairwiseReduction, rng, s1, s2)
	if got := merged.Estimate("a"); got != 4 {
		t.Errorf("merged Estimate(a) = %v, want 4", got)
	}
	if got := merged.Estimate("b"); got != 3 {
		t.Errorf("merged Estimate(b) = %v, want 3", got)
	}
}

func TestMergePreservesTotalPairwise(t *testing.T) {
	rng := newRng(13)
	s1 := New(6, Unbiased, rng)
	s2 := New(6, Unbiased, rng)
	for i := 0; i < 700; i++ {
		s1.Update(fmt.Sprintf("a%d", rng.Intn(60)))
		s2.Update(fmt.Sprintf("b%d", rng.Intn(60)))
	}
	merged := MergeSketches(6, PairwiseReduction, rng, s1, s2)
	if got, want := merged.Total(), s1.Total()+s2.Total(); math.Abs(got-want) > 1e-6 {
		t.Errorf("merged total %v, want %v", got, want)
	}
}

func TestReduceKindString(t *testing.T) {
	if PairwiseReduction.String() != "pairwise" ||
		PivotalReduction.String() != "pivotal" ||
		MisraGriesReduction.String() != "misra-gries" {
		t.Error("ReduceKind.String wrong")
	}
	if ReduceKind(9).String() != "ReduceKind(9)" {
		t.Error("unknown ReduceKind.String wrong")
	}
}

func TestReducePanicsOnBadM(t *testing.T) {
	rng := newRng(1)
	for name, fn := range map[string]func(){
		"pairwise": func() { ReducePairwise(mkBins(1, 2), 0, rng) },
		"pivotal":  func() { ReducePivotal(mkBins(1, 2), 0, rng) },
		"mg":       func() { ReduceMisraGries(mkBins(1, 2), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: m=0 did not panic", name)
				}
			}()
			fn()
		}()
	}
}
