package core

import (
	"fmt"
	"math/rand"
	"sync"
)

// Parallel counterparts of the merge kernels (§5.5's aggregation shape,
// run wide). The parallelism only ever touches the deterministic summing
// half of a merge — leaf runs merged one goroutine per group, then a
// pairwise tree reduction of runs — and every parallel entry point is
// bit-identical to its sequential counterpart:
//
//   - SumDisjointParallel: item-disjoint inputs make every (count, item)
//     key distinct, so the ascending sort of the union is unique and any
//     merge order yields the same sequence. No addition happens at all
//     (each item appears once), so there is no floating-point
//     reassociation to worry about either.
//   - SumBinsParallel: the parallel phase is a stable merge sort by item
//     over contiguous ranges of the concatenated input — exactly the
//     stable sort SumBins performs — and the duplicate fold plus final
//     count sort run sequentially on that identical intermediate.
//   - MergeBinsParallel: the reduction (which consumes the RNG) runs
//     sequentially on the combined list, so the RNG stream and therefore
//     the reduced output match MergeBins draw for draw.
//
// The randomized equivalence property is pinned by merge_parallel_test.go
// and runs under -race in CI.

// ParallelMergeCutoff is the total input size (bins) below which the
// parallel entry points fall back to their sequential counterparts:
// under ~8Ki bins the goroutine handoff costs more than the merge.
const ParallelMergeCutoff = 8192

// SumDisjointParallel is SumDisjointAscending fanned out over par
// goroutines: the input lists are split into contiguous groups of
// roughly equal total size, each group k-way merged into a
// structure-of-arrays run by its own goroutine, and the runs combined by
// a pairwise merge tree. Output is bit-identical to SumDisjointAscending
// for any par. par <= 1, few lists, or fewer than ParallelMergeCutoff
// total bins fall back to the sequential kernel.
func SumDisjointParallel(par int, lists ...[]Bin) []Bin {
	n := 0
	for _, l := range lists {
		n += len(l)
	}
	if par > len(lists) {
		par = len(lists)
	}
	if par <= 1 || n < ParallelMergeCutoff {
		return SumDisjointAscending(lists...)
	}

	// Leaves: contiguous groups balanced by total bin count, one
	// goroutine per group feeding the PR 2 cursor heap.
	runs := make([]*soaRun, 0, par)
	var wg sync.WaitGroup
	target := (n + par - 1) / par
	start, size := 0, 0
	for i, l := range lists {
		size += len(l)
		if size >= target || i == len(lists)-1 {
			r := getSoA()
			runs = append(runs, r)
			group, gn := lists[start:i+1], size
			wg.Add(1)
			go func() {
				defer wg.Done()
				r.fromDisjoint(group, gn)
			}()
			start, size = i+1, 0
		}
	}
	wg.Wait()

	// Tree reduction: pairwise-merge runs until one remains. Disjoint
	// items mean any pairing order produces the same unique ascending
	// sequence, so the tree shape is free to follow the goroutine count.
	for len(runs) > 1 {
		next := make([]*soaRun, 0, (len(runs)+1)/2)
		var mw sync.WaitGroup
		for i := 0; i+1 < len(runs); i += 2 {
			a, b := runs[i], runs[i+1]
			dst := getSoA()
			next = append(next, dst)
			mw.Add(1)
			go func() {
				defer mw.Done()
				mergeSoA(dst, a, b)
				putSoA(a)
				putSoA(b)
			}()
		}
		if len(runs)%2 == 1 {
			next = append(next, runs[len(runs)-1])
		}
		mw.Wait()
		runs = next
	}
	out := runs[0].appendBins(make([]Bin, 0, n))
	putSoA(runs[0])
	return out
}

// SumBinsParallel is SumBins fanned out over par goroutines. The
// concatenated input is stable-sorted by item as contiguous per-group
// ranges merged by a parallel merge tree (ties always taken from the
// left run, so the result is exactly the stable sort of the
// concatenation); the duplicate fold and the final ascending count sort
// then run sequentially, making the output bit-identical to SumBins —
// including the order equal items' counts fold in, which pins the
// floating-point sum. Falls back to SumBins below ParallelMergeCutoff.
func SumBinsParallel(par int, lists ...[]Bin) []Bin {
	n := 0
	for _, l := range lists {
		n += len(l)
	}
	if par > len(lists) {
		par = len(lists)
	}
	if par <= 1 || n < ParallelMergeCutoff {
		return SumBins(lists...)
	}

	out := make([]Bin, 0, n)
	bounds := make([]int, 1, par+1)
	target := (n + par - 1) / par
	size := 0
	var wg sync.WaitGroup
	for i, l := range lists {
		out = append(out, l...)
		size += len(l)
		if size >= target || i == len(lists)-1 {
			lo, hi := bounds[len(bounds)-1], len(out)
			bounds = append(bounds, hi)
			size = 0
			seg := out[lo:hi:hi] // out's cap is n, so appends never move it
			wg.Add(1)
			go func() {
				defer wg.Done()
				sortByItemStable(seg)
			}()
		}
	}
	wg.Wait()

	// Merge the sorted ranges pairwise until one remains, ping-ponging
	// between the concat buffer and one scratch buffer.
	src, dst := out[:n], make([]Bin, n)
	for len(bounds) > 2 {
		nb := make([]int, 1, len(bounds))
		var mw sync.WaitGroup
		i := 0
		for ; i+2 < len(bounds); i += 2 {
			lo, mid, hi := bounds[i], bounds[i+1], bounds[i+2]
			nb = append(nb, hi)
			mw.Add(1)
			go func() {
				defer mw.Done()
				mergeByItem(dst[lo:hi], src[lo:mid], src[mid:hi])
			}()
		}
		if i+1 < len(bounds) { // odd range carries over
			lo, hi := bounds[i], bounds[i+1]
			copy(dst[lo:hi], src[lo:hi])
			nb = append(nb, hi)
		}
		mw.Wait()
		src, dst = dst, src
		bounds = nb
	}

	// Sequential tail, identical to SumBins: fold duplicates in stable
	// (concatenation) order, then sort ascending by count.
	w := 0
	for r := 0; r < len(src); {
		item := src[r].Item
		c := src[r].Count
		for r++; r < len(src) && src[r].Item == item; r++ {
			c += src[r].Count
		}
		src[w] = Bin{Item: item, Count: c}
		w++
	}
	src = src[:w]
	sortAscending(src)
	return src
}

// mergeByItem merges two item-sorted runs into dst (len(dst) must equal
// len(a)+len(b)), taking from a on ties so that merging contiguous
// stable-sorted ranges reproduces the stable sort of the whole.
func mergeByItem(dst, a, b []Bin) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if b[j].Item < a[i].Item {
			dst[k] = b[j]
			j++
		} else {
			dst[k] = a[i]
			i++
		}
		k++
	}
	k += copy(dst[k:], a[i:])
	copy(dst[k:], b[j:])
}

// MergeBinsParallel is MergeBins with the exact summing half parallelized
// across par goroutines. The reduction below m bins — the only part that
// draws randomness — still runs sequentially on the combined list, so for
// a given rng state the output is bit-identical to MergeBins for every
// reduction kind.
func MergeBinsParallel(m int, kind ReduceKind, rng *rand.Rand, par int, lists ...[]Bin) []Bin {
	combined := SumBinsParallel(par, lists...)
	switch kind {
	case PairwiseReduction:
		if len(combined) <= m {
			return combined
		}
		return reducePairwiseInPlace(combined, m, rng)
	case PivotalReduction:
		return ReducePivotal(combined, m, rng)
	case MisraGriesReduction:
		return ReduceMisraGries(combined, m)
	default:
		panic(fmt.Sprintf("core: unknown reduction %v", kind))
	}
}
