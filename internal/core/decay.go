package core

import (
	"fmt"
	"math"
	"math/rand"
)

// DecayedSketch is the forward-decay generalization sketched in §5.3 of the
// paper, following Cormode, Shkapenyuk, Srivastava and Xu ("Forward decay: a
// practical time decay model for streaming systems", ICDE 2009).
//
// Under forward exponential decay with rate λ, a row arriving at time a has
// weight g(a)/g(t) = exp(λa)/exp(λt) when queried at time t ≥ a. Because
// every weight is scaled by the same g(t), it suffices to feed the sketch
// the un-normalized weights exp(λ·(a−t₀)) and divide by exp(λ·(t−t₀)) at
// query time. To keep the un-normalized weights within floating-point
// range over long streams, the sketch renormalizes (Scale) whenever the
// internal exponent grows past a threshold — a positive global scaling that
// commutes with the update rule and so changes nothing statistically.
type DecayedSketch struct {
	w      *WeightedSketch
	lambda float64
	origin float64 // t₀ of the current normalization window
	latest float64 // largest arrival time seen
}

// NewDecayed returns a forward-decayed Unbiased Space Saving sketch with m
// bins and decay rate lambda ≥ 0 per unit time (0 disables decay).
func NewDecayed(m int, lambda float64, rng *rand.Rand) *DecayedSketch {
	if lambda < 0 {
		panic(fmt.Sprintf("core: decay rate %v, want >= 0", lambda))
	}
	return &DecayedSketch{w: NewWeighted(m, rng), lambda: lambda}
}

// maxExponent bounds λ·(a−t₀) before renormalization kicks in. e^60 ≈ 1e26
// leaves ample headroom in float64.
const maxExponent = 60

// Update processes a row for item arriving at time at. Arrival times must
// be non-decreasing in spirit but small reorderings are tolerated (late
// rows simply get slightly smaller weights). Weight w is the row's
// undecayed metric contribution (1 for plain counting).
func (d *DecayedSketch) Update(item string, at, w float64) {
	if w <= 0 {
		panic(fmt.Sprintf("core: decayed update with weight %v, want > 0", w))
	}
	if at > d.latest {
		d.latest = at
	}
	exp := d.lambda * (at - d.origin)
	if exp > maxExponent {
		// Renormalize: divide all stored mass by e^(exp-1) and move the
		// origin so the current row's exponent becomes 1.
		shift := exp - 1
		d.w.Scale(math.Exp(-shift))
		d.origin += shift / maxNonZero(d.lambda)
		exp = d.lambda * (at - d.origin)
	}
	d.w.Update(item, w*math.Exp(exp))
}

func maxNonZero(l float64) float64 {
	if l == 0 {
		return 1
	}
	return l
}

// norm is the factor converting stored mass to decayed mass at query time:
// exp(−λ·(latest−origin)).
func (d *DecayedSketch) norm() float64 {
	return math.Exp(-d.lambda * (d.latest - d.origin))
}

// Estimate returns item's decayed weight as of the latest arrival time.
func (d *DecayedSketch) Estimate(item string) float64 {
	return d.w.Estimate(item) * d.norm()
}

// Total returns the decayed total mass as of the latest arrival time.
func (d *DecayedSketch) Total() float64 { return d.w.Total() * d.norm() }

// SubsetSum estimates the decayed weight of items satisfying pred.
func (d *DecayedSketch) SubsetSum(pred func(string) bool) Estimate {
	e := d.w.SubsetSum(pred)
	n := d.norm()
	e.Value *= n
	e.StdErr *= n
	return e
}

// Bins returns the bins with decayed counts.
func (d *DecayedSketch) Bins() []Bin {
	n := d.norm()
	bins := d.w.Bins()
	for i := range bins {
		bins[i].Count *= n
	}
	return bins
}

// Size returns the number of occupied bins.
func (d *DecayedSketch) Size() int { return d.w.Size() }

// Lambda returns the decay rate.
func (d *DecayedSketch) Lambda() float64 { return d.lambda }

// CheckInvariants delegates to the underlying weighted sketch.
func (d *DecayedSketch) CheckInvariants() error { return d.w.CheckInvariants() }
