package core

import (
	"fmt"
	"testing"
)

// TestCoverageCalibrationAcrossLevels checks §6.5 end to end: normal
// intervals built from the equation-5 variance reach at least their
// nominal coverage at several confidence levels, on an i.i.d. stream with
// a subset large enough for the CLT.
func TestCoverageCalibrationAcrossLevels(t *testing.T) {
	// 300 items, counts 1..25 cycling; subset = 100 items (plenty of
	// matched bins with m = 60).
	var rows []string
	var truth float64
	pred := func(s string) bool {
		var n int
		fmt.Sscanf(s, "i%d", &n)
		return n < 100
	}
	for i := 0; i < 300; i++ {
		c := i%25 + 1
		for j := 0; j < c; j++ {
			rows = append(rows, fmt.Sprintf("i%d", i))
		}
		if i < 100 {
			truth += float64(c)
		}
	}

	levels := []float64{0.80, 0.90, 0.95, 0.99}
	covered := make([]int, len(levels))
	rng := newRng(71)
	const reps = 1500
	for r := 0; r < reps; r++ {
		sk := New(60, Unbiased, rng)
		perm := rng.Perm(len(rows))
		for _, i := range perm {
			sk.Update(rows[i])
		}
		e := sk.SubsetSum(pred)
		for li, level := range levels {
			if e.Covers(truth, level) {
				covered[li]++
			}
		}
	}
	for li, level := range levels {
		cov := float64(covered[li]) / reps
		// Conservative intervals: coverage should meet or exceed the
		// nominal level minus Monte-Carlo slack (~3 binomial SEs).
		slack := 3 * 0.013 // sqrt(0.25/1500) ≈ 0.013
		if cov < level-slack {
			t.Errorf("level %.2f: coverage %.3f below nominal", level, cov)
		}
	}
	// Sanity: coverage is monotone in the level.
	for li := 1; li < len(levels); li++ {
		if covered[li] < covered[li-1] {
			t.Errorf("coverage not monotone: %v", covered)
		}
	}
}
