package core

import (
	"math"
	"strings"
	"testing"
)

func TestNormalQuantileTwoSided(t *testing.T) {
	cases := []struct {
		level, want float64
	}{
		{0.90, 1.6449},
		{0.95, 1.9600},
		{0.99, 2.5758},
	}
	for _, c := range cases {
		if got := NormalQuantileTwoSided(c.level); math.Abs(got-c.want) > 1e-3 {
			t.Errorf("z(%v) = %v, want %v", c.level, got, c.want)
		}
	}
}

func TestNormalQuantile(t *testing.T) {
	if got := NormalQuantile(0.975); math.Abs(got-1.9600) > 1e-3 {
		t.Errorf("Φ⁻¹(0.975) = %v, want 1.96", got)
	}
	if got := NormalQuantile(0.5); math.Abs(got) > 1e-12 {
		t.Errorf("Φ⁻¹(0.5) = %v, want 0", got)
	}
	if got := NormalQuantile(0.025); math.Abs(got+1.9600) > 1e-3 {
		t.Errorf("Φ⁻¹(0.025) = %v, want −1.96", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantileTwoSided(%v) did not panic", p)
				}
			}()
			NormalQuantileTwoSided(p)
		}()
	}
}

func TestEstimateConfidenceInterval(t *testing.T) {
	e := Estimate{Value: 100, StdErr: 10, SampleBins: 5}
	lo, hi := e.ConfidenceInterval(0.95)
	if math.Abs(lo-80.4) > 0.1 || math.Abs(hi-119.6) > 0.1 {
		t.Errorf("CI = [%v, %v], want ≈ [80.4, 119.6]", lo, hi)
	}
	// Truncation at zero.
	e = Estimate{Value: 5, StdErr: 10}
	lo, _ = e.ConfidenceInterval(0.95)
	if lo != 0 {
		t.Errorf("CI lower bound %v, want truncated 0", lo)
	}
}

func TestEstimateCovers(t *testing.T) {
	e := Estimate{Value: 100, StdErr: 10}
	if !e.Covers(100, 0.95) || !e.Covers(115, 0.95) {
		t.Error("Covers false for values inside interval")
	}
	if e.Covers(200, 0.95) {
		t.Error("Covers true for value far outside interval")
	}
}

func TestEstimateVariance(t *testing.T) {
	e := Estimate{StdErr: 3}
	if e.Variance() != 9 {
		t.Errorf("Variance = %v, want 9", e.Variance())
	}
}

func TestNewEstimateClampsCS(t *testing.T) {
	e := newEstimate(0, 0, 7)
	if e.StdErr != 7 {
		t.Errorf("C_S clamp: StdErr = %v, want Nmin = 7", e.StdErr)
	}
	e = newEstimate(50, 4, 7)
	if want := 7 * math.Sqrt(4); math.Abs(e.StdErr-want) > 1e-12 {
		t.Errorf("StdErr = %v, want %v", e.StdErr, want)
	}
}

func TestEstimateString(t *testing.T) {
	e := Estimate{Value: 12.5, StdErr: 1.25, SampleBins: 3}
	s := e.String()
	if !strings.Contains(s, "12.5") || !strings.Contains(s, "bins=3") {
		t.Errorf("String() = %q", s)
	}
}

// TestVarianceEstimateConservative verifies the paper's §6.4 claim on an
// i.i.d. stream: the equation-5 variance estimate upper-bounds the true
// Monte-Carlo variance of the subset-sum estimator (it is upward biased).
func TestVarianceEstimateConservative(t *testing.T) {
	var stream []string
	for i := 0; i < 60; i++ {
		reps := 1 + i%7
		for j := 0; j < reps; j++ {
			stream = append(stream, "i"+string(rune('A'+i%26))+string(rune('a'+i/26)))
		}
	}
	pred := func(s string) bool { return len(s) == 3 && s[1] <= 'M' }
	var truth float64
	cnt := map[string]int{}
	for _, s := range stream {
		cnt[s]++
	}
	for s, c := range cnt {
		if pred(s) {
			truth += float64(c)
		}
	}

	rng := newRng(31)
	const reps = 3000
	var sum, sumsq, varHatSum float64
	for r := 0; r < reps; r++ {
		sk := New(10, Unbiased, rng)
		perm := rng.Perm(len(stream))
		for _, i := range perm {
			sk.Update(stream[i])
		}
		e := sk.SubsetSum(pred)
		sum += e.Value
		sumsq += e.Value * e.Value
		varHatSum += e.Variance()
	}
	mean := sum / reps
	empVar := sumsq/reps - mean*mean
	meanVarHat := varHatSum / reps
	if math.Abs(mean-truth) > 0.1*truth {
		t.Fatalf("estimator biased: mean %v vs truth %v", mean, truth)
	}
	// Upward bias: estimated variance should be ≥ ~80% of empirical
	// variance (Monte-Carlo noise allowance) and typically larger.
	if meanVarHat < 0.8*empVar {
		t.Errorf("variance estimate %v below empirical variance %v", meanVarHat, empVar)
	}
}
