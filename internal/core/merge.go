package core

import (
	"fmt"
	"math/rand"
	"slices"
	"sort"
	"strings"
)

// This file implements the merge and size-reduction operations of §5.3 and
// §5.5. All frequent-item sketches share the shape "exact increment, then
// ReduceBins"; merging two sketches is summing their bins exactly and then
// reducing back to m bins. Theorem 2 says any reduction whose post-reduction
// expected counts equal the pre-reduction counts keeps the whole sketch
// unbiased, so we provide two unbiased reductions (pairwise and pivotal) and
// the biased Misra–Gries soft-threshold reduction for comparison.

// sortAscending orders bins in place by count, ties broken by item — the
// canonical bin-list order every reduction returns.
func sortAscending(bins []Bin) {
	slices.SortFunc(bins, func(a, b Bin) int {
		if a.Count != b.Count {
			if a.Count < b.Count {
				return -1
			}
			return 1
		}
		return strings.Compare(a.Item, b.Item)
	})
}

// SumBins adds bin lists item-wise, producing one exact bin per distinct
// item in ascending count order. Items are grouped by sorting the
// concatenation rather than hashing into a map: one output allocation, no
// per-item map churn, identical output. The sort is stable, so a
// duplicated item's counts always fold in concatenation order — the
// canonical order that pins the floating-point sum and lets
// SumBinsParallel reproduce this function bit for bit.
//
// The operation is associative with a canonical result: summing partial
// sums of sublists yields the same output as summing all the lists at once,
// as long as per-item additions are exact (always true for the integral
// counts unit sketches carry). The rollup's cached merge tree leans on this
// to substitute precomputed segment sums for runs of window bin lists.
func SumBins(lists ...[]Bin) []Bin {
	n := 0
	for _, l := range lists {
		n += len(l)
	}
	out := make([]Bin, 0, n)
	for _, l := range lists {
		out = append(out, l...)
	}
	if len(out) == 0 {
		return out
	}
	sortByItemStable(out)
	w := 0
	for r := 0; r < len(out); {
		item := out[r].Item
		c := out[r].Count
		for r++; r < len(out) && out[r].Item == item; r++ {
			c += out[r].Count
		}
		out[w] = Bin{Item: item, Count: c}
		w++
	}
	out = out[:w]
	sortAscending(out)
	return out
}

// sortByItemStable orders bins by item, preserving input order among
// equal items. Both SumBins and the parallel merge tree sort with it so
// they agree on the intermediate ordering bit for bit.
func sortByItemStable(bins []Bin) {
	slices.SortStableFunc(bins, func(a, b Bin) int { return strings.Compare(a.Item, b.Item) })
}

// SumDisjointAscending sums bin lists known to share no items — the
// shard-partitioned shape ShardedSketch produces, where each item's rows
// all hash to one shard — via a k-way merge over the inputs' ascending bin
// lists. With no item appearing twice, the exact item-wise sum needs no
// aggregation at all, so the merge is a single pass: one output
// allocation, no hashing, no re-sort. Each input must be in ascending
// count order (the order Sketch.Bins returns); the output is in ascending
// count order.
func SumDisjointAscending(lists ...[]Bin) []Bin {
	n := 0
	live := 0
	for _, l := range lists {
		n += len(l)
		if len(l) > 0 {
			live++
		}
	}
	out := make([]Bin, 0, n)
	if live == 1 {
		for _, l := range lists {
			out = append(out, l...)
		}
		return out
	}
	k := kmerge{lists: lists, cur: make([]int, len(lists)), heap: make([]int32, 0, live)}
	for i, l := range lists {
		if len(l) > 0 {
			k.heap = append(k.heap, int32(i))
		}
	}
	for i := len(k.heap)/2 - 1; i >= 0; i-- {
		k.down(i)
	}
	for len(k.heap) > 0 {
		li := k.heap[0]
		out = append(out, k.lists[li][k.cur[li]])
		k.cur[li]++
		if k.cur[li] == len(k.lists[li]) {
			last := len(k.heap) - 1
			k.heap[0] = k.heap[last]
			k.heap = k.heap[:last]
		}
		k.down(0)
	}
	return out
}

// kmerge is the cursor min-heap behind SumDisjointAscending: heap entries
// are input-list indices, ordered by each list's current head bin.
type kmerge struct {
	lists [][]Bin
	cur   []int
	heap  []int32
}

func (k *kmerge) less(a, b int32) bool {
	ba, bb := k.lists[a][k.cur[a]], k.lists[b][k.cur[b]]
	if ba.Count != bb.Count {
		return ba.Count < bb.Count
	}
	return ba.Item < bb.Item
}

func (k *kmerge) down(i int) {
	h := k.heap
	for {
		j := 2*i + 1
		if j >= len(h) {
			return
		}
		if j2 := j + 1; j2 < len(h) && k.less(h[j2], h[j]) {
			j = j2
		}
		if !k.less(h[j], h[i]) {
			return
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// binHeap is a min-heap over Bin by count used by the pairwise reduction:
// an index-based slice heap whose operations mirror container/heap's
// sift order exactly (so a fixed RNG stream reduces identically) without
// boxing every Bin through interface{} on each collapse.
type binHeap []Bin

func (h binHeap) less(i, j int) bool { return h[i].Count < h[j].Count }

func (h binHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h binHeap) down(i int) {
	for {
		j := 2*i + 1
		if j >= len(h) {
			return
		}
		if j2 := j + 1; j2 < len(h) && h.less(j2, j) {
			j = j2
		}
		if !h.less(j, i) {
			return
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

func (h binHeap) up(j int) {
	for j > 0 {
		i := (j - 1) / 2
		if !h.less(j, i) {
			return
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (h *binHeap) pop() Bin {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	*h = old[:n]
	(*h).down(0)
	return old[n]
}

func (h *binHeap) push(b Bin) {
	*h = append(*h, b)
	h.up(len(*h) - 1)
}

// ReducePairwise shrinks bins to at most m entries by repeatedly collapsing
// the two smallest bins a ≤ b into one bin of count a+b that keeps b's label
// with probability b/(a+b). Each collapse preserves each item's expected
// count and the exact total, so the reduction satisfies Theorem 2. This is
// exactly the view of the streaming update in §5.3 (a PPS sample on the two
// smallest bins) applied repeatedly.
func ReducePairwise(bins []Bin, m int, rng *rand.Rand) []Bin {
	if m <= 0 {
		panic(fmt.Sprintf("core: reduce to m = %d bins", m))
	}
	h := make(binHeap, len(bins))
	copy(h, bins)
	return reducePairwiseInPlace(h, m, rng)
}

// reducePairwiseInPlace runs the pairwise collapse on a heap the caller
// hands over ownership of. The collapse loop works entirely inside the
// slice — two pops and a push per step, no boxing, no per-collapse
// allocation — and the surviving prefix is sorted and returned in place.
func reducePairwiseInPlace(h binHeap, m int, rng *rand.Rand) []Bin {
	h.init()
	for len(h) > m {
		a := h.pop()
		b := h.pop()
		c := a.Count + b.Count
		keep := b.Item
		if c > 0 && rng.Float64()*c < a.Count {
			keep = a.Item
		}
		h.push(Bin{Item: keep, Count: c})
	}
	out := []Bin(h)
	sortAscending(out)
	return out
}

// ReducePivotal shrinks bins to exactly min(m, len(bins)) entries by drawing
// a fixed-size probability-proportional-to-size sample with the splitting
// (pivotal) method of Deville & Tillé (1998) and Horvitz–Thompson adjusting
// the surviving counts: a bin with inclusion probability πᵢ < 1 that
// survives is stored as count/πᵢ. Expected post-reduction counts equal the
// pre-reduction counts, so this too satisfies Theorem 2, and it adds less
// quadratic variation per step than the pairwise collapse because large bins
// (πᵢ = 1) are never randomized.
func ReducePivotal(bins []Bin, m int, rng *rand.Rand) []Bin {
	if m <= 0 {
		panic(fmt.Sprintf("core: reduce to m = %d bins", m))
	}
	if len(bins) <= m {
		out := make([]Bin, len(bins))
		copy(out, bins)
		return out
	}
	values := make([]float64, len(bins))
	for i, b := range bins {
		values[i] = b.Count
	}
	pi := InclusionProbabilities(values, m)

	out := make([]Bin, 0, m)
	// Certain bins (π = 1) pass through untouched; the rest run the
	// pivotal duel. Each fractional entry tracks both its current process
	// probability (cur, which grows as duels are won) and the unit's
	// original inclusion probability (orig, the divisor for the
	// Horvitz–Thompson adjustment — the pivotal process guarantees the
	// final selection probability equals orig).
	type frac struct {
		bin       Bin
		cur, orig float64
	}
	var pool []frac
	for i, b := range bins {
		if pi[i] >= 1 {
			out = append(out, b)
		} else if pi[i] > 0 {
			pool = append(pool, frac{bin: b, cur: pi[i], orig: pi[i]})
		}
	}
	// Pivotal method: repeatedly combine two fractional probabilities;
	// one of the pair resolves to 0 or 1, the other keeps the remainder.
	for len(pool) >= 2 {
		a, b := pool[len(pool)-1], pool[len(pool)-2]
		pool = pool[:len(pool)-2]
		s := a.cur + b.cur
		if s < 1 {
			// One of them dies; the survivor holds probability s.
			if rng.Float64()*s < a.cur {
				a.cur = s
				pool = append(pool, a)
			} else {
				b.cur = s
				pool = append(pool, b)
			}
		} else {
			// One of them is selected outright; the other keeps s-1.
			if rng.Float64()*(2-s) < 1-a.cur {
				out = append(out, Bin{Item: b.bin.Item, Count: b.bin.Count / b.orig})
				a.cur = s - 1
				pool = append(pool, a)
			} else {
				out = append(out, Bin{Item: a.bin.Item, Count: a.bin.Count / a.orig})
				b.cur = s - 1
				pool = append(pool, b)
			}
		}
	}
	if len(pool) == 1 {
		// Residual probability; with Σπ = m integral this is 0 or 1 up
		// to rounding, resolve it by a final coin flip.
		f := pool[0]
		if rng.Float64() < f.cur {
			out = append(out, Bin{Item: f.bin.Item, Count: f.bin.Count / f.orig})
		}
	}
	sortAscending(out)
	return out
}

// ReduceMisraGries shrinks bins to at most m entries with the biased
// soft-threshold reduction of Agarwal et al. (2013): subtract the (m+1)-th
// largest count from every bin and drop non-positive results. It preserves
// the deterministic error guarantee but biases every count downward; the
// paper's Figure 1 contrasts it with the unbiased reductions.
func ReduceMisraGries(bins []Bin, m int) []Bin {
	if m <= 0 {
		panic(fmt.Sprintf("core: reduce to m = %d bins", m))
	}
	if len(bins) <= m {
		out := make([]Bin, len(bins))
		copy(out, bins)
		return out
	}
	sorted := make([]Bin, len(bins))
	copy(sorted, bins)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Count > sorted[j].Count })
	thresh := sorted[m].Count
	out := make([]Bin, 0, m)
	for _, b := range sorted[:m] {
		if c := b.Count - thresh; c > 0 {
			out = append(out, Bin{Item: b.Item, Count: c})
		}
	}
	sortAscending(out)
	return out
}

// InclusionProbabilities returns the thresholded-PPS inclusion probabilities
// πᵢ = min(1, α·xᵢ) with α chosen so that Σπᵢ = min(m, #positive values)
// (§5.1). Zero values get probability zero.
func InclusionProbabilities(values []float64, m int) []float64 {
	n := len(values)
	pi := make([]float64, n)
	positive := 0
	for _, v := range values {
		if v > 0 {
			positive++
		}
	}
	if m >= positive {
		for i, v := range values {
			if v > 0 {
				pi[i] = 1
			}
		}
		return pi
	}
	// Sort value indices descending; find the number k of certain items
	// such that α = (m-k)/Σ_{rest} gives α·x ≤ 1 for all the rest.
	idx := make([]int, 0, positive)
	for i, v := range values {
		if v > 0 {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool { return values[idx[a]] > values[idx[b]] })
	var tail float64
	for _, i := range idx {
		tail += values[i]
	}
	k := 0
	for k < m {
		alpha := (float64(m) - float64(k)) / tail
		if alpha*values[idx[k]] <= 1 {
			break
		}
		tail -= values[idx[k]]
		k++
	}
	alpha := (float64(m) - float64(k)) / tail
	for j, i := range idx {
		if j < k {
			pi[i] = 1
		} else {
			p := alpha * values[i]
			if p > 1 {
				p = 1
			}
			pi[i] = p
		}
	}
	return pi
}

// ReduceKind selects a reduction operation for Merge.
type ReduceKind int

const (
	// PairwiseReduction collapses the two smallest bins repeatedly
	// (unbiased, integer-friendly, the default).
	PairwiseReduction ReduceKind = iota
	// PivotalReduction draws a fixed-size PPS sample with HT adjustment
	// (unbiased, lower added variance, real-valued counts).
	PivotalReduction
	// MisraGriesReduction soft-thresholds (biased, deterministic bound).
	MisraGriesReduction
)

func (k ReduceKind) String() string {
	switch k {
	case PairwiseReduction:
		return "pairwise"
	case PivotalReduction:
		return "pivotal"
	case MisraGriesReduction:
		return "misra-gries"
	default:
		return fmt.Sprintf("ReduceKind(%d)", int(k))
	}
}

// MergeBins sums any number of bin lists exactly and reduces the result to
// at most m bins with the chosen reduction. The output is in ascending
// count order.
func MergeBins(m int, kind ReduceKind, rng *rand.Rand, lists ...[]Bin) []Bin {
	combined := SumBins(lists...)
	switch kind {
	case PairwiseReduction:
		if len(combined) <= m {
			return combined
		}
		// SumBins hands over a fresh slice, so the collapse can run in
		// place without the defensive copy ReducePairwise makes.
		return reducePairwiseInPlace(combined, m, rng)
	case PivotalReduction:
		return ReducePivotal(combined, m, rng)
	case MisraGriesReduction:
		return ReduceMisraGries(combined, m)
	default:
		panic(fmt.Sprintf("core: unknown reduction %v", kind))
	}
}

// MergeSketches merges unit sketches into a fresh WeightedSketch of size m
// using the given reduction. The result is weighted because merged counts
// need not stay integral under HT adjustment; with PairwiseReduction they
// do stay integral but are stored as float64 regardless.
func MergeSketches(m int, kind ReduceKind, rng *rand.Rand, sketches ...*Sketch) *WeightedSketch {
	lists := make([][]Bin, len(sketches))
	for i, sk := range sketches {
		lists[i] = sk.Bins()
	}
	return SketchFromBins(m, rng, MergeBins(m, kind, rng, lists...))
}

// MergeWeighted merges weighted sketches into a fresh WeightedSketch.
func MergeWeighted(m int, kind ReduceKind, rng *rand.Rand, sketches ...*WeightedSketch) *WeightedSketch {
	lists := make([][]Bin, len(sketches))
	for i, sk := range sketches {
		lists[i] = sk.Bins()
	}
	return SketchFromBins(m, rng, MergeBins(m, kind, rng, lists...))
}

// SketchFromBins loads pre-reduced bins (non-positive counts are dropped)
// into a fresh WeightedSketch of capacity m — the load half shared by
// every merge and by ShardedSketch snapshots.
func SketchFromBins(m int, rng *rand.Rand, bins []Bin) *WeightedSketch {
	s := NewWeighted(m, rng)
	for _, b := range bins {
		if b.Count > 0 {
			s.Update(b.Item, b.Count)
		}
	}
	return s
}
