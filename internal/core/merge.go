package core

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
)

// This file implements the merge and size-reduction operations of §5.3 and
// §5.5. All frequent-item sketches share the shape "exact increment, then
// ReduceBins"; merging two sketches is summing their bins exactly and then
// reducing back to m bins. Theorem 2 says any reduction whose post-reduction
// expected counts equal the pre-reduction counts keeps the whole sketch
// unbiased, so we provide two unbiased reductions (pairwise and pivotal) and
// the biased Misra–Gries soft-threshold reduction for comparison.

// sumBins adds bin lists item-wise, producing one exact bin per distinct
// item in ascending count order.
func sumBins(lists ...[]Bin) []Bin {
	acc := make(map[string]float64)
	for _, l := range lists {
		for _, b := range l {
			acc[b.Item] += b.Count
		}
	}
	out := make([]Bin, 0, len(acc))
	for it, c := range acc {
		out = append(out, Bin{Item: it, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count < out[j].Count
		}
		return out[i].Item < out[j].Item
	})
	return out
}

// binHeap is a min-heap over Bin by count used by the pairwise reduction.
type binHeap []Bin

func (h binHeap) Len() int            { return len(h) }
func (h binHeap) Less(i, j int) bool  { return h[i].Count < h[j].Count }
func (h binHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *binHeap) Push(x interface{}) { *h = append(*h, x.(Bin)) }
func (h *binHeap) Pop() interface{} {
	old := *h
	n := len(old) - 1
	b := old[n]
	*h = old[:n]
	return b
}

// ReducePairwise shrinks bins to at most m entries by repeatedly collapsing
// the two smallest bins a ≤ b into one bin of count a+b that keeps b's label
// with probability b/(a+b). Each collapse preserves each item's expected
// count and the exact total, so the reduction satisfies Theorem 2. This is
// exactly the view of the streaming update in §5.3 (a PPS sample on the two
// smallest bins) applied repeatedly.
func ReducePairwise(bins []Bin, m int, rng *rand.Rand) []Bin {
	if m <= 0 {
		panic(fmt.Sprintf("core: reduce to m = %d bins", m))
	}
	h := make(binHeap, len(bins))
	copy(h, bins)
	heap.Init(&h)
	for h.Len() > m {
		a := heap.Pop(&h).(Bin)
		b := heap.Pop(&h).(Bin)
		c := a.Count + b.Count
		keep := b.Item
		if c > 0 && rng.Float64()*c < a.Count {
			keep = a.Item
		}
		heap.Push(&h, Bin{Item: keep, Count: c})
	}
	out := make([]Bin, h.Len())
	copy(out, h)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count < out[j].Count
		}
		return out[i].Item < out[j].Item
	})
	return out
}

// ReducePivotal shrinks bins to exactly min(m, len(bins)) entries by drawing
// a fixed-size probability-proportional-to-size sample with the splitting
// (pivotal) method of Deville & Tillé (1998) and Horvitz–Thompson adjusting
// the surviving counts: a bin with inclusion probability πᵢ < 1 that
// survives is stored as count/πᵢ. Expected post-reduction counts equal the
// pre-reduction counts, so this too satisfies Theorem 2, and it adds less
// quadratic variation per step than the pairwise collapse because large bins
// (πᵢ = 1) are never randomized.
func ReducePivotal(bins []Bin, m int, rng *rand.Rand) []Bin {
	if m <= 0 {
		panic(fmt.Sprintf("core: reduce to m = %d bins", m))
	}
	if len(bins) <= m {
		out := make([]Bin, len(bins))
		copy(out, bins)
		return out
	}
	values := make([]float64, len(bins))
	for i, b := range bins {
		values[i] = b.Count
	}
	pi := InclusionProbabilities(values, m)

	out := make([]Bin, 0, m)
	// Certain bins (π = 1) pass through untouched; the rest run the
	// pivotal duel. Each fractional entry tracks both its current process
	// probability (cur, which grows as duels are won) and the unit's
	// original inclusion probability (orig, the divisor for the
	// Horvitz–Thompson adjustment — the pivotal process guarantees the
	// final selection probability equals orig).
	type frac struct {
		bin       Bin
		cur, orig float64
	}
	var pool []frac
	for i, b := range bins {
		if pi[i] >= 1 {
			out = append(out, b)
		} else if pi[i] > 0 {
			pool = append(pool, frac{bin: b, cur: pi[i], orig: pi[i]})
		}
	}
	// Pivotal method: repeatedly combine two fractional probabilities;
	// one of the pair resolves to 0 or 1, the other keeps the remainder.
	for len(pool) >= 2 {
		a, b := pool[len(pool)-1], pool[len(pool)-2]
		pool = pool[:len(pool)-2]
		s := a.cur + b.cur
		if s < 1 {
			// One of them dies; the survivor holds probability s.
			if rng.Float64()*s < a.cur {
				a.cur = s
				pool = append(pool, a)
			} else {
				b.cur = s
				pool = append(pool, b)
			}
		} else {
			// One of them is selected outright; the other keeps s-1.
			if rng.Float64()*(2-s) < 1-a.cur {
				out = append(out, Bin{Item: b.bin.Item, Count: b.bin.Count / b.orig})
				a.cur = s - 1
				pool = append(pool, a)
			} else {
				out = append(out, Bin{Item: a.bin.Item, Count: a.bin.Count / a.orig})
				b.cur = s - 1
				pool = append(pool, b)
			}
		}
	}
	if len(pool) == 1 {
		// Residual probability; with Σπ = m integral this is 0 or 1 up
		// to rounding, resolve it by a final coin flip.
		f := pool[0]
		if rng.Float64() < f.cur {
			out = append(out, Bin{Item: f.bin.Item, Count: f.bin.Count / f.orig})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count < out[j].Count
		}
		return out[i].Item < out[j].Item
	})
	return out
}

// ReduceMisraGries shrinks bins to at most m entries with the biased
// soft-threshold reduction of Agarwal et al. (2013): subtract the (m+1)-th
// largest count from every bin and drop non-positive results. It preserves
// the deterministic error guarantee but biases every count downward; the
// paper's Figure 1 contrasts it with the unbiased reductions.
func ReduceMisraGries(bins []Bin, m int) []Bin {
	if m <= 0 {
		panic(fmt.Sprintf("core: reduce to m = %d bins", m))
	}
	if len(bins) <= m {
		out := make([]Bin, len(bins))
		copy(out, bins)
		return out
	}
	sorted := make([]Bin, len(bins))
	copy(sorted, bins)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Count > sorted[j].Count })
	thresh := sorted[m].Count
	out := make([]Bin, 0, m)
	for _, b := range sorted[:m] {
		if c := b.Count - thresh; c > 0 {
			out = append(out, Bin{Item: b.Item, Count: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count < out[j].Count
		}
		return out[i].Item < out[j].Item
	})
	return out
}

// InclusionProbabilities returns the thresholded-PPS inclusion probabilities
// πᵢ = min(1, α·xᵢ) with α chosen so that Σπᵢ = min(m, #positive values)
// (§5.1). Zero values get probability zero.
func InclusionProbabilities(values []float64, m int) []float64 {
	n := len(values)
	pi := make([]float64, n)
	positive := 0
	for _, v := range values {
		if v > 0 {
			positive++
		}
	}
	if m >= positive {
		for i, v := range values {
			if v > 0 {
				pi[i] = 1
			}
		}
		return pi
	}
	// Sort value indices descending; find the number k of certain items
	// such that α = (m-k)/Σ_{rest} gives α·x ≤ 1 for all the rest.
	idx := make([]int, 0, positive)
	for i, v := range values {
		if v > 0 {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool { return values[idx[a]] > values[idx[b]] })
	var tail float64
	for _, i := range idx {
		tail += values[i]
	}
	k := 0
	for k < m {
		alpha := (float64(m) - float64(k)) / tail
		if alpha*values[idx[k]] <= 1 {
			break
		}
		tail -= values[idx[k]]
		k++
	}
	alpha := (float64(m) - float64(k)) / tail
	for j, i := range idx {
		if j < k {
			pi[i] = 1
		} else {
			p := alpha * values[i]
			if p > 1 {
				p = 1
			}
			pi[i] = p
		}
	}
	return pi
}

// ReduceKind selects a reduction operation for Merge.
type ReduceKind int

const (
	// PairwiseReduction collapses the two smallest bins repeatedly
	// (unbiased, integer-friendly, the default).
	PairwiseReduction ReduceKind = iota
	// PivotalReduction draws a fixed-size PPS sample with HT adjustment
	// (unbiased, lower added variance, real-valued counts).
	PivotalReduction
	// MisraGriesReduction soft-thresholds (biased, deterministic bound).
	MisraGriesReduction
)

func (k ReduceKind) String() string {
	switch k {
	case PairwiseReduction:
		return "pairwise"
	case PivotalReduction:
		return "pivotal"
	case MisraGriesReduction:
		return "misra-gries"
	default:
		return fmt.Sprintf("ReduceKind(%d)", int(k))
	}
}

// MergeBins sums any number of bin lists exactly and reduces the result to
// at most m bins with the chosen reduction. The output is in ascending
// count order.
func MergeBins(m int, kind ReduceKind, rng *rand.Rand, lists ...[]Bin) []Bin {
	combined := sumBins(lists...)
	switch kind {
	case PairwiseReduction:
		if len(combined) <= m {
			return combined
		}
		return ReducePairwise(combined, m, rng)
	case PivotalReduction:
		return ReducePivotal(combined, m, rng)
	case MisraGriesReduction:
		return ReduceMisraGries(combined, m)
	default:
		panic(fmt.Sprintf("core: unknown reduction %v", kind))
	}
}

// MergeSketches merges unit sketches into a fresh WeightedSketch of size m
// using the given reduction. The result is weighted because merged counts
// need not stay integral under HT adjustment; with PairwiseReduction they
// do stay integral but are stored as float64 regardless.
func MergeSketches(m int, kind ReduceKind, rng *rand.Rand, sketches ...*Sketch) *WeightedSketch {
	lists := make([][]Bin, len(sketches))
	for i, sk := range sketches {
		lists[i] = sk.Bins()
	}
	return sketchFromBins(m, rng, MergeBins(m, kind, rng, lists...))
}

// MergeWeighted merges weighted sketches into a fresh WeightedSketch.
func MergeWeighted(m int, kind ReduceKind, rng *rand.Rand, sketches ...*WeightedSketch) *WeightedSketch {
	lists := make([][]Bin, len(sketches))
	for i, sk := range sketches {
		lists[i] = sk.Bins()
	}
	return sketchFromBins(m, rng, MergeBins(m, kind, rng, lists...))
}

// sketchFromBins loads pre-reduced bins into a WeightedSketch.
func sketchFromBins(m int, rng *rand.Rand, bins []Bin) *WeightedSketch {
	s := NewWeighted(m, rng)
	for _, b := range bins {
		if b.Count > 0 {
			s.Update(b.Item, b.Count)
		}
	}
	return s
}
