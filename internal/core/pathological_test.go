package core

import (
	"fmt"
	"math"
	"testing"
)

// Tests in this file exercise the non-i.i.d. guarantees of §6.3 and
// Theorem 10: unbiasedness holds for every arrival order, and inclusion
// probabilities never fall below the simple-random-sampling floor.

// streamOrders builds one fixed multiset of rows in several pathological
// arrangements.
func streamOrders() map[string][]string {
	// 40 items, item i occurs i+1 times (820 rows).
	var sortedAsc []string
	for i := 0; i < 40; i++ {
		for j := 0; j <= i; j++ {
			sortedAsc = append(sortedAsc, fmt.Sprintf("i%d", i))
		}
	}
	sortedDesc := make([]string, len(sortedAsc))
	for i, r := range sortedAsc {
		sortedDesc[len(sortedAsc)-1-i] = r
	}
	// Round-robin bursts: items interleaved in repeating blocks.
	var bursts []string
	remaining := map[string]int{}
	for i := 0; i < 40; i++ {
		remaining[fmt.Sprintf("i%d", i)] = i + 1
	}
	for len(remaining) > 0 {
		for i := 0; i < 40; i++ {
			item := fmt.Sprintf("i%d", i)
			if remaining[item] == 0 {
				continue
			}
			take := 3
			if remaining[item] < take {
				take = remaining[item]
			}
			for j := 0; j < take; j++ {
				bursts = append(bursts, item)
			}
			remaining[item] -= take
			if remaining[item] == 0 {
				delete(remaining, item)
			}
		}
	}
	return map[string][]string{
		"sorted-ascending":  sortedAsc,
		"sorted-descending": sortedDesc,
		"bursty":            bursts,
	}
}

// TestUnbiasedOnPathologicalOrders z-tests subset-sum unbiasedness on each
// fixed pathological order (no shuffling — the order itself is the test).
func TestUnbiasedOnPathologicalOrders(t *testing.T) {
	pred := func(s string) bool {
		var n int
		fmt.Sscanf(s, "i%d", &n)
		return n%4 == 0
	}
	var truth float64
	for i := 0; i < 40; i++ {
		if i%4 == 0 {
			truth += float64(i + 1)
		}
	}
	for name, rows := range streamOrders() {
		rng := newRng(int64(len(name)))
		const reps = 4000
		var sum, sumsq float64
		for r := 0; r < reps; r++ {
			s := New(8, Unbiased, rng)
			for _, it := range rows {
				s.Update(it)
			}
			e := s.SubsetSum(pred).Value
			sum += e
			sumsq += e * e
		}
		mean := sum / reps
		varr := sumsq/reps - mean*mean
		se := math.Sqrt(varr / reps)
		if se == 0 {
			se = 1e-12
		}
		if z := math.Abs(mean-truth) / se; z > 4.5 {
			t.Errorf("%s: mean %.2f vs truth %.0f, |z| = %.1f", name, mean, truth, z)
		}
	}
}

// TestDeterministicFailsOnSortedAscending contrasts: classic Space Saving
// on the ascending order estimates 0 for every early item (the §6.3
// failure the randomization repairs).
func TestDeterministicFailsOnSortedAscending(t *testing.T) {
	rows := streamOrders()["sorted-ascending"]
	s := New(8, Deterministic, newRng(1))
	for _, it := range rows {
		s.Update(it)
	}
	for i := 0; i < 20; i++ {
		if est := s.Estimate(fmt.Sprintf("i%d", i)); est != 0 {
			t.Errorf("deterministic Estimate(i%d) = %v on sorted stream, want 0", i, est)
		}
	}
}

// TestInclusionLowerBound verifies Theorem 10: an item occurring nᵢ times
// in a stream of ntot rows has inclusion probability at least
// 1 − (1 − nᵢ/ntot)^m, for the theorem's own worst-case sequence (ntot−nᵢ
// distinct rows followed by the item nᵢ times).
func TestInclusionLowerBound(t *testing.T) {
	const m = 5
	const ntot = 200
	for _, ni := range []int{5, 20, 50} {
		var rows []string
		for j := 0; j < ntot-ni; j++ {
			rows = append(rows, fmt.Sprintf("noise%d", j))
		}
		for j := 0; j < ni; j++ {
			rows = append(rows, "target")
		}
		rng := newRng(int64(ni))
		const reps = 6000
		hits := 0
		for r := 0; r < reps; r++ {
			s := New(m, Unbiased, rng)
			for _, it := range rows {
				s.Update(it)
			}
			if s.Contains("target") {
				hits++
			}
		}
		pi := float64(hits) / reps
		bound := 1 - math.Pow(1-float64(ni)/float64(ntot), m)
		// Monte-Carlo slack: 4 binomial standard errors.
		slack := 4 * math.Sqrt(bound*(1-bound)/reps)
		if pi < bound-slack-0.01 {
			t.Errorf("ni=%d: inclusion %.4f below theorem-10 bound %.4f", ni, pi, bound)
		}
	}
}

// TestTheorem10BoundTight verifies the tightness claim: on the theorem's
// worst-case sequence the inclusion probability is close to the bound, not
// far above it (the bins all grow to ntot/m before the target arrives).
func TestTheorem10BoundTight(t *testing.T) {
	const m = 5
	const ntot = 1000
	const ni = 50
	var rows []string
	for j := 0; j < ntot-ni; j++ {
		rows = append(rows, fmt.Sprintf("noise%d", j))
	}
	for j := 0; j < ni; j++ {
		rows = append(rows, "target")
	}
	rng := newRng(99)
	const reps = 6000
	hits := 0
	for r := 0; r < reps; r++ {
		s := New(m, Unbiased, rng)
		for _, it := range rows {
			s.Update(it)
		}
		if s.Contains("target") {
			hits++
		}
	}
	pi := float64(hits) / reps
	bound := 1 - math.Pow(1-float64(ni)/float64(ntot), m)
	if pi > bound+0.1 {
		t.Errorf("inclusion %.4f far above the supposedly tight bound %.4f", pi, bound)
	}
}

// TestBurstyItemStaysEstimable: an item arriving in periodic bursts (below
// the guaranteed-inclusion threshold between bursts) keeps an unbiased
// estimate under the randomized sketch.
func TestBurstyItemStaysEstimable(t *testing.T) {
	// 20 cycles of: 50 distinct noise rows, then 10 "burst" rows.
	var rows []string
	nid := 0
	for c := 0; c < 20; c++ {
		for j := 0; j < 50; j++ {
			rows = append(rows, fmt.Sprintf("n%d", nid))
			nid++
		}
		for j := 0; j < 10; j++ {
			rows = append(rows, "burst")
		}
	}
	truth := 200.0
	rng := newRng(5)
	const reps = 4000
	var sum float64
	for r := 0; r < reps; r++ {
		s := New(10, Unbiased, rng)
		for _, it := range rows {
			s.Update(it)
		}
		sum += s.Estimate("burst")
	}
	mean := sum / reps
	if math.Abs(mean-truth) > 0.1*truth {
		t.Errorf("bursty item mean estimate %v, truth %v", mean, truth)
	}
}
