package core

import (
	"container/heap"
	"fmt"
)

// Shrink reduces the weighted sketch in place to at most m bins using the
// given unbiased reduction, and lowers its capacity to m. This implements
// the §5.3 generalization of "adaptively varying the sketch size in order
// to only remove items with small estimated frequency": shrinking is just
// another reduction step, so every post-shrink estimate remains unbiased
// (Theorem 2) as long as an unbiased ReduceKind is used.
func (s *WeightedSketch) Shrink(m int, kind ReduceKind) {
	if m <= 0 {
		panic(fmt.Sprintf("core: shrink to m = %d bins", m))
	}
	if m >= s.m {
		// Capacity can only shrink here; growing is free (see Grow).
		s.m = m
		s.version++
		return
	}
	s.version++
	var reduced []Bin
	switch kind {
	case PairwiseReduction:
		reduced = ReducePairwise(s.Bins(), m, s.rng)
	case PivotalReduction:
		reduced = ReducePivotal(s.Bins(), m, s.rng)
	case MisraGriesReduction:
		reduced = ReduceMisraGries(s.Bins(), m)
	default:
		panic(fmt.Sprintf("core: unknown reduction %v", kind))
	}
	s.m = m
	s.h = s.h[:0]
	s.index = make(map[string]*wbin, m)
	s.total = 0
	for _, b := range reduced {
		if b.Count <= 0 {
			continue
		}
		wb := &wbin{item: b.Item, count: b.Count}
		heap.Push(&s.h, wb)
		s.index[b.Item] = wb
		s.total += b.Count
	}
}

// Grow raises the sketch's capacity to m (a no-op when m ≤ current
// capacity). Existing bins are untouched; new capacity simply delays the
// next reduction, which only improves accuracy.
func (s *WeightedSketch) Grow(m int) {
	if m > s.m {
		s.m = m
		// Capacity feeds MinCount (and through it query standard errors),
		// so growing invalidates cached derived state too.
		s.version++
	}
}

// ToWeighted converts a unit sketch into a weighted sketch with the same
// bins and capacity, sharing no state. Useful before Shrink/Grow or for
// mixing unit history with weighted updates.
func (s *Sketch) ToWeighted() *WeightedSketch {
	w := NewWeighted(s.m, s.rng)
	for _, b := range s.Bins() {
		if b.Count > 0 {
			w.Update(b.Item, b.Count)
		}
	}
	return w
}
