package core

import (
	"fmt"
	"math"
)

// Estimate is a subset-sum point estimate with the paper's variance
// estimate attached (Ting 2018, §6.4–6.5).
type Estimate struct {
	// Value is the point estimate N̂_S.
	Value float64
	// StdErr is sqrt(V̂ar(N̂_S)) with V̂ar = N̂min²·C_S (equation 5).
	// It is upward biased, so intervals built from it are conservative.
	StdErr float64
	// SampleBins is the number of sketch bins that matched the subset
	// (C_S before clamping to ≥ 1). Normal intervals are only trustworthy
	// when this is large enough for the CLT; the paper's experiments show
	// coverage degrading below roughly 10 matched bins.
	SampleBins int
}

// newEstimate assembles an Estimate from a matched-bin sum, the number of
// matched bins and the sketch's current minimum count.
func newEstimate(sum float64, hits int, nmin float64) Estimate {
	cs := hits
	if cs < 1 {
		cs = 1
	}
	return Estimate{
		Value:      sum,
		StdErr:     nmin * math.Sqrt(float64(cs)),
		SampleBins: hits,
	}
}

// SubsetSumBins estimates a subset sum directly over a merged bin list in
// ascending count order (the canonical order MergeBins returns), for
// callers that cache merged bins and never materialize a sketch. m is the
// capacity the merge reduced to; as in a live sketch, N̂min is 0 while the
// bin list is under capacity and the smallest bin count otherwise, so the
// result is identical to loading bins into a WeightedSketch of capacity m
// and calling SubsetSum.
func SubsetSumBins(bins []Bin, m int, pred func(item string) bool) Estimate {
	var sum float64
	var hits int
	for _, b := range bins {
		if pred(b.Item) {
			sum += b.Count
			hits++
		}
	}
	var nmin float64
	if len(bins) >= m && len(bins) > 0 {
		nmin = bins[0].Count
	}
	return newEstimate(sum, hits, nmin)
}

// ConfidenceInterval returns the two-sided normal interval
// Value ± z·StdErr at the given confidence level in (0,1), truncated below
// at zero (counts cannot be negative).
func (e Estimate) ConfidenceInterval(level float64) (lo, hi float64) {
	z := NormalQuantileTwoSided(level)
	lo = e.Value - z*e.StdErr
	hi = e.Value + z*e.StdErr
	if lo < 0 {
		lo = 0
	}
	return lo, hi
}

// Variance returns StdErr².
func (e Estimate) Variance() float64 { return e.StdErr * e.StdErr }

// Covers reports whether the level-confidence interval contains truth.
func (e Estimate) Covers(truth, level float64) bool {
	lo, hi := e.ConfidenceInterval(level)
	return truth >= lo && truth <= hi
}

func (e Estimate) String() string {
	return fmt.Sprintf("%.6g ± %.3g (bins=%d)", e.Value, e.StdErr, e.SampleBins)
}

// NormalQuantileTwoSided returns z such that P(|Z| ≤ z) = level for a
// standard normal Z, e.g. ≈1.96 for level 0.95. It panics outside (0,1).
func NormalQuantileTwoSided(level float64) float64 {
	if level <= 0 || level >= 1 {
		panic(fmt.Sprintf("core: confidence level %v outside (0,1)", level))
	}
	return math.Sqrt2 * math.Erfinv(level)
}

// NormalQuantile returns the standard normal quantile Φ⁻¹(p) for p in (0,1).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("core: probability %v outside (0,1)", p))
	}
	return math.Sqrt2 * math.Erfinv(2*p-1)
}
