package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"maps"
	"net/http"
	"strconv"
	"strings"
	"time"

	uss "repro"
	"repro/internal/store"
)

// writeJSON serializes v with a status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError reports a failure as {"error": ...}.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// statusFor maps a registry error to its status: ErrExists is a
// conflict, ErrNotFound a miss, anything else the caller's bad request.
// Every handler routes registry errors through this one table so the
// API's error contract cannot drift per endpoint (it briefly did:
// create used to answer 409 for validation errors).
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrExists):
		return http.StatusConflict
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	default:
		return http.StatusBadRequest
	}
}

// sketchInfo is the list/info response shape.
type sketchInfo struct {
	SketchConfig
	Capacity int     `json:"capacity"`
	Size     int     `json:"size"`
	Rows     int64   `json:"rows"`
	Total    float64 `json:"total"`
	Pushes   int64   `json:"pushes,omitempty"`
	Windows  int     `json:"windows,omitempty"`
	Dropped  int64   `json:"dropped_rows,omitempty"`
}

// info assembles the stats snapshot for one entry. A demoted entry
// answers from its preserved cold stats without reviving, so listing
// sketches (and anti-entropy digests, which build on info) never drags
// cold state back into memory.
func (e *entry) info() sketchInfo {
	out := sketchInfo{
		SketchConfig: e.cfg,
		Capacity:     e.capacity(),
		Rows:         e.rows.Load(),
		Pushes:       e.pushes.Load(),
		Dropped:      e.dropped.Load(),
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cold.Load() {
		out.Size, out.Total = e.coldSize, e.coldTotal
		return out
	}
	switch e.cfg.Kind {
	case KindSharded:
		out.Size = e.sharded.Size()
		out.Total = e.sharded.Total()
	case KindUnit:
		out.Size = e.unit.Size()
		out.Total = e.unit.Total()
	case KindWeighted:
		out.Size = e.weighted.Size()
		out.Total = e.weighted.Total()
	case KindRollup:
		ws := e.rollup.Windows()
		out.Windows = len(ws)
		if len(ws) > 0 {
			out.Total = e.rollup.TotalRange(ws[0], ws[len(ws)-1])
		}
	}
	return out
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	if s.followerRejects(w) {
		return
	}
	var cfg SketchConfig
	if err := json.NewDecoder(r.Body).Decode(&cfg); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode config: %w", err))
		return
	}
	e, err := s.createSketch(cfg)
	if err != nil {
		if errors.Is(err, store.ErrReadOnly) {
			writeRetryError(w, http.StatusServiceUnavailable, readOnlyRetryAfter, err)
			return
		}
		writeError(w, statusFor(err), err)
		return
	}
	if s.dur != nil && s.dur.ackAfterFsync {
		// Manifest records honor the same group-commit ack gate as
		// ingest: no 201 before a covering fsync. Creates are rare, so
		// waiting on the log's current tail is fine.
		if err := s.dur.st.WaitDurable(r.Context(), s.dur.st.LastLSN()); err != nil {
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("create logged but not yet durable (%v); not acknowledged", err))
			return
		}
	}
	writeJSON(w, http.StatusCreated, e.info())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	entries := s.reg.List()
	infos := make([]sketchInfo, len(entries))
	for i, e := range entries {
		infos[i] = e.info()
	}
	writeJSON(w, http.StatusOK, map[string]any{"sketches": infos})
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	// Stats only — resolved without lookup's revive step, so polling a
	// demoted sketch's info (like listing it) never drags it back into
	// memory.
	name := r.PathValue("name")
	e, ok := s.reg.Get(name)
	if !ok {
		err := fmt.Errorf("sketch %q: %w", name, ErrNotFound)
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, e.info())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if s.followerRejects(w) {
		return
	}
	ok, err := s.deleteSketch(r.PathValue("name"))
	if err != nil {
		if errors.Is(err, store.ErrReadOnly) {
			writeRetryError(w, http.StatusServiceUnavailable, readOnlyRetryAfter, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		err := fmt.Errorf("sketch %q: %w", r.PathValue("name"), ErrNotFound)
		writeError(w, statusFor(err), err)
		return
	}
	if s.dur != nil && s.dur.ackAfterFsync {
		// See handleCreate: the delete's manifest record must be fsynced
		// before the 204.
		if err := s.dur.st.WaitDurable(r.Context(), s.dur.st.LastLSN()); err != nil {
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("delete logged but not yet durable (%v); not acknowledged", err))
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// ingestJSON is the JSON ingest request body: either bare items (unit,
// sharded) or full rows (any kind).
type ingestJSON struct {
	Items []string `json:"items"`
	Rows  []struct {
		Item   string  `json:"item"`
		Weight float64 `json:"weight"`
		At     int64   `json:"at"`
	} `json:"rows"`
}

// handleIngest decodes a batch (pooled text fast path, or JSON) and either
// queues it (default, 202) or applies it inline (?sync=1, 200). Admission
// runs first: the body's bytes charge the global in-flight budget before
// decoding, and the decoded row count draws from the sketch's token
// bucket; either gate sheds with a Retry-After hint.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.followerRejects(w) {
		return
	}
	charge, admitted := s.admitBody(w, r)
	if !admitted {
		return
	}
	handedOff := false
	defer func() {
		if !handedOff {
			s.adm.release(charge)
		}
	}()
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	b := getBatch()
	if err := s.decodeIngest(r, e.cfg.Kind, b); err != nil {
		putBatch(b)
		s.met.ingestRejected.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	n := len(b.items)
	if n == 0 {
		putBatch(b)
		writeJSON(w, http.StatusOK, map[string]any{"rows": 0})
		return
	}
	if rate := s.cfg.IngestRateRows; rate > 0 {
		if ok, wait := e.takeTokens(float64(n), rate, s.cfg.IngestBurstRows); !ok {
			putBatch(b)
			s.met.shed429.Add(1)
			writeRetryError(w, http.StatusTooManyRequests, wait,
				fmt.Errorf("sketch %q over its ingest rate (%g rows/s)", e.cfg.Name, rate))
			return
		}
	}
	s.met.batchesQueued.Add(1)
	sync := r.URL.Query().Get("sync") != ""
	if s.dur != nil {
		handedOff = s.ingestDurable(w, r, e, b, n, sync, charge)
		return
	}
	if sync {
		s.applyBatch(e, b, 0)
		putBatch(b)
		writeJSON(w, http.StatusOK, map[string]any{"rows": n})
		return
	}
	queued, err := s.enqueue(r.Context(), ingestJob{e: e, b: b, charge: charge})
	if err != nil {
		// Queue full until the client's deadline: shed the batch — the
		// rows were never acknowledged, so dropping them here is the
		// backpressure contract, not loss.
		putBatch(b)
		writeRetryError(w, http.StatusServiceUnavailable, time.Second, fmt.Errorf("ingest queue full: %w", err))
		return
	}
	if !queued {
		// Shutting down: the queue is closed, apply inline rather than
		// dropping accepted rows.
		s.applyBatch(e, b, 0)
		putBatch(b)
		writeJSON(w, http.StatusOK, map[string]any{"rows": n})
		return
	}
	handedOff = true // the worker releases the charge after the apply
	writeJSON(w, http.StatusAccepted, map[string]any{"rows": n, "queued": true})
}

// ingestDurable is the write-ahead ingest path: the batch's WAL record
// and its queue slot are claimed in one walMu critical section (so the
// entry's worker sees jobs in LSN order), and nothing is acknowledged
// before the append — under -fsync always an acknowledged batch is on
// disk. Sync callers wait for the worker to apply instead of applying
// inline, which would break per-entry ordering; the wait observes the
// request context, so a dead client releases its handler while the
// already-logged batch still applies in order.
func (s *Server) ingestDurable(w http.ResponseWriter, r *http.Request, e *entry, b *ingestBatch, n int, sync bool, charge int64) (handedOff bool) {
	var done chan applyResult
	if sync {
		done = make(chan applyResult, 1)
	}
	s.dur.walMu.Lock()
	lsn, err := s.appendIngestWAL(e, b)
	if err != nil {
		s.dur.walMu.Unlock()
		putBatch(b)
		if errors.Is(err, store.ErrReadOnly) {
			// Disk below the hard watermark: the store is read-only until
			// space returns. The batch was never logged or acknowledged.
			writeRetryError(w, http.StatusServiceUnavailable, readOnlyRetryAfter, err)
			return false
		}
		writeError(w, http.StatusInternalServerError, fmt.Errorf("wal append: %w", err))
		return false
	}
	e.appendedLSN.Store(lsn)
	// The record is on the log, so the batch must not be dropped on any
	// path below: enqueue without a context deadline (the queue slot wait
	// is bounded by shutdown, and the batch's worker never blocks on the
	// buffered done channel).
	queued, _ := s.enqueue(context.Background(), ingestJob{e: e, b: b, lsn: lsn, done: done, charge: charge})
	s.dur.walMu.Unlock()
	if !queued {
		// Shutting down after the drain deadline: the queues are closed.
		// Applying inline here would race the entry's worker and could
		// invert per-entry LSN order — the one invariant checkpoints
		// stand on — so refuse instead. The record is already on the
		// log above the entry's watermark, so the drain checkpoint's
		// cutoff spares it and the next boot replays it: a 503 here
		// still means at-least-once, never loss.
		putBatch(b)
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("shutting down; batch is logged and will apply on restart"))
		return false
	}
	if s.dur.ackAfterFsync {
		// Group commit: the record is logged and queued, but the ack
		// must not outrun the interval fsync that covers it. The wait
		// runs outside walMu, so many batches share one fsync. On
		// timeout nothing was acknowledged — the batch still applies
		// (and survives only if the log reached disk), exactly the
		// SyncAlways contract.
		if err := s.dur.st.WaitDurable(r.Context(), lsn); err != nil {
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("batch logged but not yet durable (%v); not acknowledged", err))
			return true
		}
	}
	if sync {
		select {
		case <-done:
			writeJSON(w, http.StatusOK, map[string]any{"rows": n})
		case <-r.Context().Done():
			// Client gone or deadline struck: free the handler. The batch
			// is logged and queued, so it still applies in LSN order.
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("request context done before apply (%w); batch is logged and queued", r.Context().Err()))
		}
		return true
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"rows": n, "queued": true})
	return true
}

// decodeIngest parses the request body into b according to content type:
// anything but application/json takes the pooled newline-text path.
func (s *Server) decodeIngest(r *http.Request, kind Kind, b *ingestBatch) error {
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		if err := b.readBody(r.Body, s.cfg.MaxBodyBytes); err != nil {
			return err
		}
		return b.parseText(kind)
	}
	var req ingestJSON
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		return fmt.Errorf("decode ingest body: %w", err)
	}
	return b.appendJSONRows(kind, &req)
}

// appendJSONRows validates a decoded JSON ingest body and appends its
// rows to the batch's columns — shared by the ingest handler and
// ParseIngestBody so the proxy and the node reject identical bodies.
func (b *ingestBatch) appendJSONRows(kind Kind, req *ingestJSON) error {
	if len(req.Items) > 0 {
		if kind == KindRollup {
			return fmt.Errorf("rollup ingest needs rows with timestamps, not bare items")
		}
		b.items = append(b.items, req.Items...)
		if kind == KindWeighted {
			// Keep the weight column positionally aligned with items, so
			// a body mixing bare items and weighted rows pairs each
			// weight with its own row.
			for range req.Items {
				b.ws = append(b.ws, 1)
			}
		}
	}
	for i, row := range req.Rows {
		if row.Item == "" {
			return fmt.Errorf("row %d: empty item", i)
		}
		b.items = append(b.items, row.Item)
		switch kind {
		case KindWeighted:
			wt := row.Weight
			if wt == 0 {
				wt = 1
			}
			if wt < 0 {
				return fmt.Errorf("row %d: negative weight %v", i, row.Weight)
			}
			b.ws = append(b.ws, wt)
		case KindRollup:
			b.ats = append(b.ats, row.At)
		}
	}
	return nil
}

// parseReduction maps the ?reduction= parameter.
func parseReduction(name string) (uss.Reduction, error) {
	switch name {
	case "", "pairwise":
		return uss.Pairwise, nil
	case "pivotal":
		return uss.Pivotal, nil
	case "misra-gries":
		return uss.MisraGries, nil
	default:
		return 0, fmt.Errorf("unknown reduction %q (want pairwise, pivotal or misra-gries)", name)
	}
}

// handlePush merges a shipped wire-format snapshot into a weighted entry:
// DecodeBins → MergeBins under the entry lock → the entry's sketch is
// replaced by the merged state. Only weighted entries accept pushes — the
// merge of arbitrary snapshots is weighted by nature, so the natural
// aggregator is a KindWeighted sketch sized to hold the union.
func (s *Server) handlePush(w http.ResponseWriter, r *http.Request) {
	if s.followerRejects(w) {
		return
	}
	charge, admitted := s.admitBody(w, r)
	if !admitted {
		return
	}
	handedOff := false
	defer func() {
		if !handedOff {
			s.adm.release(charge)
		}
	}()
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if e.cfg.Kind != KindWeighted {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("sketch %q is %s; snapshots push into weighted sketches", e.cfg.Name, e.cfg.Kind))
		return
	}
	red, err := parseReduction(r.URL.Query().Get("reduction"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	b := getBatch()
	defer putBatch(b)
	if err := b.readBody(r.Body, s.cfg.MaxBodyBytes); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Decoded bins copy their items out of the body (one shared arena),
	// so the pooled buffer is free for reuse as soon as this returns.
	pushed, err := uss.DecodeBins(b.buf)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var res applyResult
	if s.dur != nil {
		// Write-ahead: log the validated snapshot and its reduction,
		// then apply on the entry's worker in LSN order.
		done := make(chan applyResult, 1)
		s.dur.walMu.Lock()
		lsn, err := s.dur.st.AppendSnapshot(e.cfg.Name, byte(red), b.buf)
		if err != nil {
			s.dur.walMu.Unlock()
			if errors.Is(err, store.ErrReadOnly) {
				writeRetryError(w, http.StatusServiceUnavailable, readOnlyRetryAfter, err)
				return
			}
			writeError(w, http.StatusInternalServerError, fmt.Errorf("wal append: %w", err))
			return
		}
		e.appendedLSN.Store(lsn)
		queued, _ := s.enqueue(context.Background(), ingestJob{e: e, push: pushed, red: red, lsn: lsn, done: done, charge: charge})
		s.dur.walMu.Unlock()
		if !queued {
			// See ingestDurable: applying inline post-drain could invert
			// per-entry LSN order; the logged record replays on restart.
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("shutting down; snapshot is logged and will merge on restart"))
			return
		}
		handedOff = true // the worker releases the charge after the merge
		if s.dur.ackAfterFsync {
			// See ingestDurable: no ack before a covering fsync.
			if err := s.dur.st.WaitDurable(r.Context(), lsn); err != nil {
				writeError(w, http.StatusServiceUnavailable,
					fmt.Errorf("snapshot logged but not yet durable (%v); not acknowledged", err))
				return
			}
		}
		select {
		case res = <-done:
		case <-r.Context().Done():
			// The push is logged and queued; it merges in order without us.
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("request context done before merge (%w); snapshot is logged and queued", r.Context().Err()))
			return
		}
	} else {
		res = s.applyPush(e, pushed, red, 0)
	}
	if res.err != nil {
		writeError(w, http.StatusInternalServerError, res.err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"merged_bins": len(pushed),
		"size":        res.size,
		"capacity":    e.cfg.Bins,
		"total":       res.total,
	})
}

// handlePull serves the entry's current state as a wire-v2 snapshot. The
// encode runs into the entry's reused buffer under its lock; the response
// writes from a detached copy so a slow client never holds the lock.
func (s *Server) handlePull(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var blob []byte
	var err error
	switch e.cfg.Kind {
	case KindUnit:
		e.mu.Lock()
		e.enc, err = e.unit.AppendBinary(e.enc[:0])
		blob = append([]byte(nil), e.enc...)
		e.mu.Unlock()
	case KindWeighted:
		e.mu.Lock()
		e.enc, err = e.weighted.AppendBinary(e.enc[:0])
		blob = append([]byte(nil), e.enc...)
		e.mu.Unlock()
	case KindSharded:
		blob, err = e.sharded.Snapshot(0).MarshalBinary()
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("sketch %q is a rollup; pull a range with /range endpoints", e.cfg.Name))
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.met.snapshotsOut.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
	_, _ = w.Write(blob)
}

// binDTO is one (item, count) pair in JSON responses.
type binDTO struct {
	Item  string  `json:"item"`
	Count float64 `json:"count"`
}

func toBinDTOs(bins []uss.Bin) []binDTO {
	out := make([]binDTO, len(bins))
	for i, b := range bins {
		out[i] = binDTO{Item: b.Item, Count: b.Count}
	}
	return out
}

// intParam parses an integer query parameter with a default.
func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q", name, v)
	}
	return n, nil
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	k, err := intParam(r, "k", 10)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var bins []uss.Bin
	switch e.cfg.Kind {
	case KindSharded:
		bins = e.sharded.TopK(k) // lock-free cached read path
	case KindUnit:
		e.mu.Lock()
		bins = e.unit.TopK(k)
		e.mu.Unlock()
	case KindWeighted:
		e.mu.Lock()
		bins = e.weighted.TopK(k)
		e.mu.Unlock()
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("sketch %q is a rollup; use /range/topk", e.cfg.Name))
		return
	}
	s.met.queriesServed.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{"items": toBinDTOs(bins)})
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	item := r.URL.Query().Get("item")
	if item == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing item parameter"))
		return
	}
	var est float64
	switch e.cfg.Kind {
	case KindSharded:
		est = e.sharded.Estimate(item)
	case KindUnit:
		e.mu.Lock()
		est = e.unit.Estimate(item)
		e.mu.Unlock()
	case KindWeighted:
		e.mu.Lock()
		est = e.weighted.Estimate(item)
		e.mu.Unlock()
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("sketch %q is a rollup; use /range endpoints", e.cfg.Name))
		return
	}
	s.met.queriesServed.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{"item": item, "estimate": est})
}

// estimateDTO renders an Estimate with its conservative 95% interval.
type estimateDTO struct {
	Value      float64    `json:"value"`
	StdErr     float64    `json:"std_err"`
	SampleBins int        `json:"sample_bins"`
	CI95       [2]float64 `json:"ci95"`
}

func toEstimateDTO(e uss.Estimate) estimateDTO {
	lo, hi := e.ConfidenceInterval(0.95)
	return estimateDTO{Value: e.Value, StdErr: e.StdErr, SampleBins: e.SampleBins, CI95: [2]float64{lo, hi}}
}

// sumPredicate builds a label predicate from the prefix/suffix/items
// query parameters (exactly one must be given).
func sumPredicate(r *http.Request) (func(string) bool, error) {
	q := r.URL.Query()
	prefix, suffix, items := q.Get("prefix"), q.Get("suffix"), q.Get("items")
	given := 0
	for _, v := range []string{prefix, suffix, items} {
		if v != "" {
			given++
		}
	}
	if given != 1 {
		return nil, fmt.Errorf("give exactly one of prefix=, suffix= or items=")
	}
	switch {
	case prefix != "":
		return func(s string) bool { return strings.HasPrefix(s, prefix) }, nil
	case suffix != "":
		return func(s string) bool { return strings.HasSuffix(s, suffix) }, nil
	default:
		set := make(map[string]bool)
		for _, it := range strings.Split(items, ",") {
			set[it] = true
		}
		return func(s string) bool { return set[s] }, nil
	}
}

func (s *Server) handleSum(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	pred, err := sumPredicate(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var est uss.Estimate
	switch e.cfg.Kind {
	case KindSharded:
		est = e.sharded.SubsetSum(pred)
	case KindUnit:
		e.mu.Lock()
		est = e.unit.SubsetSum(pred)
		e.mu.Unlock()
	case KindWeighted:
		e.mu.Lock()
		est = e.weighted.SubsetSum(pred)
		e.mu.Unlock()
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("sketch %q is a rollup; use /range/sum", e.cfg.Name))
		return
	}
	s.met.queriesServed.Add(1)
	writeJSON(w, http.StatusOK, toEstimateDTO(est))
}

// queryRequest is the POST /query body: the §2 template.
type queryRequest struct {
	Where []struct {
		Dim string   `json:"dim"`
		In  []string `json:"in"`
	} `json:"where"`
	GroupBy []string `json:"group_by"`
}

// groupDTO is one result row of a template query.
type groupDTO struct {
	Key        map[string]string `json:"key,omitempty"`
	KeyString  string            `json:"key_string"`
	Value      float64           `json:"value"`
	StdErr     float64           `json:"std_err"`
	SampleBins int               `json:"sample_bins"`
}

// queryCacheKey renders spec unambiguously: every dim and value is
// quoted (escaping the separators), so distinct specs can never collide
// the way a fmt %v rendering would (e.g. In:["us","de"] vs In:["us de"]).
func queryCacheKey(q uss.QuerySpec) string {
	var sb strings.Builder
	for _, f := range q.Where {
		sb.WriteString(strconv.Quote(f.Dim))
		for _, v := range f.In {
			sb.WriteByte(':')
			sb.WriteString(strconv.Quote(v))
		}
		sb.WriteByte(';')
	}
	sb.WriteByte('|')
	for _, d := range q.GroupBy {
		sb.WriteString(strconv.Quote(d))
		sb.WriteByte(';')
	}
	return sb.String()
}

// prepared resolves the entry's cached PreparedQuery for spec, compiling
// and caching on miss. Caller holds e.mu. The cache is reset wholesale
// past 128 distinct specs — a safety valve, not an LRU; steady workloads
// repeat a handful of shapes.
func (e *entry) prepared(spec uss.QuerySpec) *uss.PreparedQuery {
	key := queryCacheKey(spec)
	if p, ok := e.prep[key]; ok {
		return p
	}
	if e.qe == nil {
		switch e.cfg.Kind {
		case KindUnit:
			e.qe = e.unit.QueryEngine()
		case KindWeighted:
			e.qe = e.weighted.QueryEngine()
		case KindSharded:
			e.qe = e.sharded.QueryEngine()
		}
	}
	if e.prep == nil || len(e.prep) >= 128 {
		e.prep = make(map[string]*uss.PreparedQuery)
	}
	p := e.qe.Prepare(spec)
	e.prep[key] = p
	return p
}

// handleQuery evaluates the filter/group-by template through the entry's
// prepared-query cache: repeat query shapes reuse their compiled program
// and the sketch's columnar label index, so a query against an unchanged
// sketch re-parses nothing (PR 2 read path).
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if e.cfg.Kind == KindRollup {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("sketch %q is a rollup; use /range endpoints", e.cfg.Name))
		return
	}
	var req queryRequest
	if err := json.NewDecoder(http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode query: %w", err))
		return
	}
	spec := uss.QuerySpec{GroupBy: req.GroupBy}
	for _, f := range req.Where {
		spec.Where = append(spec.Where, uss.QueryFilter{Dim: f.Dim, In: f.In})
	}
	e.mu.Lock()
	groups, skipped, err := e.prepared(spec).Run()
	if err != nil {
		e.mu.Unlock()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Prepared results are engine-owned and reused by the next run, so
	// they are detached into DTOs (including cloned Key maps — JSON
	// rendering happens after the lock drops) before the unlock.
	out := make([]groupDTO, len(groups))
	for i, g := range groups {
		out[i] = groupDTO{
			Key:        maps.Clone(g.Key),
			KeyString:  g.KeyString(),
			Value:      g.Sum.Value,
			StdErr:     g.Sum.StdErr,
			SampleBins: g.Sum.SampleBins,
		}
	}
	e.mu.Unlock()
	s.met.queriesServed.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{"groups": out, "skipped": skipped})
}

// rangeParams parses from/to for the rollup range endpoints.
func rangeParams(r *http.Request) (from, to int64, err error) {
	q := r.URL.Query()
	from, err = strconv.ParseInt(q.Get("from"), 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad from=%q", q.Get("from"))
	}
	to, err = strconv.ParseInt(q.Get("to"), 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad to=%q", q.Get("to"))
	}
	return from, to, nil
}

// rollupEntry gates the /range endpoints to rollup entries.
func (s *Server) rollupEntry(w http.ResponseWriter, r *http.Request) (*entry, bool) {
	e, ok := s.lookup(w, r)
	if !ok {
		return nil, false
	}
	if e.cfg.Kind != KindRollup {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("sketch %q is %s; /range endpoints need a rollup", e.cfg.Name, e.cfg.Kind))
		return nil, false
	}
	return e, true
}

// handleRangeTopK serves top-k over a window range off the rollup's
// incremental merge tree and per-range memos (PR 3 read path).
func (s *Server) handleRangeTopK(w http.ResponseWriter, r *http.Request) {
	e, ok := s.rollupEntry(w, r)
	if !ok {
		return
	}
	from, to, err := rangeParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	k, err := intParam(r, "k", 10)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	e.mu.Lock()
	bins := e.rollup.TopKRange(from, to, k)
	e.mu.Unlock()
	s.met.queriesServed.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{"items": toBinDTOs(bins)})
}

func (s *Server) handleRangeSum(w http.ResponseWriter, r *http.Request) {
	e, ok := s.rollupEntry(w, r)
	if !ok {
		return
	}
	from, to, err := rangeParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pred, err := sumPredicate(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	e.mu.Lock()
	est, covered := e.rollup.SubsetSumRange(from, to, pred)
	e.mu.Unlock()
	if !covered {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("no retained window intersects [%d, %d]", from, to))
		return
	}
	s.met.queriesServed.Add(1)
	writeJSON(w, http.StatusOK, toEstimateDTO(est))
}

func (s *Server) handleRangeTotal(w http.ResponseWriter, r *http.Request) {
	e, ok := s.rollupEntry(w, r)
	if !ok {
		return
	}
	from, to, err := rangeParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	e.mu.Lock()
	total := e.rollup.TotalRange(from, to)
	e.mu.Unlock()
	s.met.queriesServed.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{"total": total})
}
