package server

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	uss "repro"
	"repro/internal/store"
)

// durableState is the server's durability harness: the attached store,
// the mutex that orders WAL appends with queue insertion and registry
// mutation, and the periodic checkpoint loop.
//
// # Write-ahead protocol
//
// Every mutating operation is logged before it is acknowledged:
//
//   - create/delete append a manifest record under walMu before touching
//     the registry, so the log's manifest history always leads the map;
//   - ingest batches and snapshot pushes append their record and join
//     the worker queue inside one walMu critical section, so queue order
//     equals LSN order, and each entry's jobs are routed to a single
//     worker by name hash — per-entry application order is exactly LSN
//     order. Sync ingests and pushes ride the same queue and wait on a
//     completion channel instead of applying inline, preserving that
//     order.
//
// Because applies per entry happen in LSN order under the entry lock,
// entry.appliedLSN is gap-free: the sketch state contains exactly the
// records with LSN ≤ appliedLSN. That is what lets a checkpoint record a
// per-sketch LSN and recovery replay exactly the records above it —
// nothing is double-applied and nothing acknowledged is lost.
type durableState struct {
	st    *store.Store
	walMu sync.Mutex

	// ackAfterFsync gates every ingest/push acknowledgement on
	// store.WaitDurable (group commit): the record is appended and
	// queued under walMu as usual, but the HTTP response is not written
	// until an interval fsync covers its LSN. The wait happens after
	// walMu is released, so the flush never serializes the group.
	ackAfterFsync bool

	every time.Duration
	stop  chan struct{}
	wg    sync.WaitGroup
}

// specFromConfig converts the server's create-request config to the
// store's manifest spec (same JSON shape).
func specFromConfig(cfg SketchConfig) store.SketchSpec {
	return store.SketchSpec{
		Name: cfg.Name, Kind: string(cfg.Kind), Bins: cfg.Bins, Shards: cfg.Shards,
		Seed: cfg.Seed, WindowLength: cfg.WindowLength, Retain: cfg.Retain,
	}
}

// configFromSpec is the inverse of specFromConfig.
func configFromSpec(sp store.SketchSpec) SketchConfig {
	return SketchConfig{
		Name: sp.Name, Kind: Kind(sp.Kind), Bins: sp.Bins, Shards: sp.Shards,
		Seed: sp.Seed, WindowLength: sp.WindowLength, Retain: sp.Retain,
	}
}

// AttachStore makes the server durable: sketches rebuilt by
// store.Rebuild are adopted into the registry, every subsequent mutating
// request is written to st's WAL before it is acknowledged, and — when
// checkpointEvery is positive — a background loop checkpoints the live
// sketches and compacts the log. Shutdown takes a final checkpoint and
// closes the store.
//
// Attach before serving traffic: recovery installs registry entries
// non-atomically, and a durable server must see every mutation via its
// handlers (driving the Registry directly would bypass the log).
// rebuilt may be nil for a fresh data directory.
func (s *Server) AttachStore(st *store.Store, rebuilt *store.RebuildResult, checkpointEvery time.Duration) error {
	if s.dur != nil {
		return fmt.Errorf("server: store already attached")
	}
	if rebuilt != nil {
		for _, name := range sortedNames(rebuilt.Sketches) {
			e, err := entryFromRebuilt(rebuilt.Sketches[name])
			if err != nil {
				return fmt.Errorf("server: recover sketch %q: %w", name, err)
			}
			if err := s.reg.adopt(e); err != nil {
				return fmt.Errorf("server: recover sketch %q: %w", name, err)
			}
			s.met.rowsIngested.Add(e.rows.Load())
		}
	}
	st.WireObs(s.ob.FsyncHist, s.ob.GroupCommitHist, s.cfg.Log)
	d := &durableState{st: st, ackAfterFsync: st.AckAfterFsync(), every: checkpointEvery, stop: make(chan struct{})}
	s.dur = d
	// Adopt the data dir's replication timeline so a restarted node knows
	// which epoch its log belongs to (a dir that predates replication is
	// on the zero timeline).
	tl, err := store.LoadTimeline(st.Dir())
	if err != nil {
		return err
	}
	s.epoch.Store(tl.Epoch)
	s.promoteLSN.Store(tl.PromoteLSN)
	// The pressure loop always runs on a durable server: it answers disk
	// watermark trips with an emergency checkpoint (truncating the log is
	// how the server gives disk space back) and enforces the memory soft
	// watermark by demoting cold sketches.
	d.wg.Add(1)
	go s.pressureLoop()
	if checkpointEvery > 0 {
		d.wg.Add(1)
		go s.checkpointLoop()
	}
	return nil
}

// sortedNames returns the map's keys in sorted order for deterministic
// recovery.
func sortedNames(m map[string]*store.RebuiltSketch) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// entryFromRebuilt wraps a rebuilt sketch in a registry entry.
func entryFromRebuilt(rb *store.RebuiltSketch) (*entry, error) {
	cfg := configFromSpec(rb.Spec)
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e := &entry{cfg: cfg}
	e.lastAccess.Store(time.Now().UnixNano())
	e.unit, e.weighted, e.sharded, e.rollup = rb.Unit, rb.Weighted, rb.Sharded, rb.Rollup
	e.rows.Store(rb.Rows)
	e.pushes.Store(rb.Pushes)
	e.dropped.Store(rb.Dropped)
	e.appliedLSN.Store(rb.LSN)
	e.appendedLSN.Store(rb.LSN) // recovery leaves nothing in flight
	return e, nil
}

// createSketch validates, logs (when durable) and registers a sketch.
func (s *Server) createSketch(cfg SketchConfig) (*entry, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if s.dur == nil {
		return s.reg.Create(cfg)
	}
	s.dur.walMu.Lock()
	defer s.dur.walMu.Unlock()
	if _, taken := s.reg.Get(cfg.Name); taken {
		return nil, fmt.Errorf("sketch %q: %w", cfg.Name, ErrExists)
	}
	spec, err := json.Marshal(specFromConfig(cfg))
	if err != nil {
		return nil, err
	}
	lsn, err := s.dur.st.AppendCreate(spec)
	if err != nil {
		return nil, err
	}
	e, err := s.reg.Create(cfg)
	if err != nil {
		return nil, err
	}
	// The empty sketch's state covers exactly the records through its
	// create record. Without this watermark a never-written sketch would
	// pin the checkpoint cutoff at 0 and disable log compaction.
	e.appliedLSN.Store(lsn)
	e.appendedLSN.Store(lsn)
	return e, nil
}

// CreateSketch creates a hosted sketch exactly as POST /v1/sketches
// does, including write-ahead logging on a durable server — the
// programmatic entry point for pre-creating sketches (the ussd -create
// flag). Use errors.Is with ErrExists to detect a name that recovery
// already restored.
func (s *Server) CreateSketch(cfg SketchConfig) error {
	_, err := s.createSketch(cfg)
	return err
}

// deleteSketch logs (when durable) and unregisters a sketch, reporting
// whether it existed.
func (s *Server) deleteSketch(name string) (bool, error) {
	if s.dur == nil {
		return s.reg.Delete(name), nil
	}
	s.dur.walMu.Lock()
	defer s.dur.walMu.Unlock()
	if _, ok := s.reg.Get(name); !ok {
		return false, nil
	}
	if _, err := s.dur.st.AppendDelete(name); err != nil {
		return false, err
	}
	return s.reg.Delete(name), nil
}

// encodeState serializes the entry's sketch for a checkpoint. Caller
// holds e.mu, which on a durable server excludes the entry's (single)
// applier, so the blob is one consistent cut.
func (e *entry) encodeState() ([]byte, error) {
	if e.cold.Load() {
		// A demoted entry's exact state is its cold blob (it was encoded
		// by this very function at demotion time), so checkpoints and
		// cluster state pulls stay correct without reviving it.
		return os.ReadFile(e.coldPath)
	}
	switch e.cfg.Kind {
	case KindUnit:
		return e.unit.AppendBinary(nil)
	case KindWeighted:
		return e.weighted.AppendBinary(nil)
	case KindSharded:
		return e.sharded.AppendShards(nil)
	case KindRollup:
		return e.rollup.AppendWindows(nil)
	}
	return nil, fmt.Errorf("unknown kind %q", e.cfg.Kind)
}

// Checkpoint persists every live sketch's state and compacts the WAL.
// Safe to call concurrently with traffic: each sketch is encoded under
// its entry lock at its exact applied LSN, and the store only truncates
// segments every checkpointed sketch has outgrown. No-op without an
// attached store.
func (s *Server) Checkpoint() error {
	if s.dur == nil {
		return nil
	}
	// walMu orders the entry listing against creates: a sketch created
	// after this snapshot of the registry has its create record above
	// the checkpoint's base LSN, so truncation can never drop it.
	s.dur.walMu.Lock()
	entries := s.reg.List()
	cw, err := s.dur.st.BeginCheckpoint()
	s.dur.walMu.Unlock()
	if err != nil {
		return err
	}
	for _, e := range entries {
		e.mu.Lock()
		meta := store.CheckpointMeta{
			LSN:     e.appliedLSN.Load(),
			Rows:    e.rows.Load(),
			Pushes:  e.pushes.Load(),
			Dropped: e.dropped.Load(),
		}
		if e.appendedLSN.Load() == meta.LSN && cw.BaseLSN() > meta.LSN {
			// Nothing in flight for this entry: no record for it exists
			// in (appliedLSN, base], so its replay gate can sit at the
			// checkpoint base. Otherwise one idle sketch would pin the
			// truncation cutoff at its last write forever. A record
			// appended concurrently with this read lands above base and
			// replays regardless.
			meta.LSN = cw.BaseLSN()
		}
		state, serr := e.encodeState()
		e.mu.Unlock()
		if serr != nil {
			cw.Abort()
			return fmt.Errorf("server: checkpoint %q: %w", e.cfg.Name, serr)
		}
		if err := cw.Add(specFromConfig(e.cfg), meta, state); err != nil {
			cw.Abort()
			return err
		}
	}
	// A checkpoint must never cover records the log has not fsynced:
	// were the manifest committed first and the un-fsynced tail lost
	// with the machine, recovery would resume numbering below the
	// checkpoint's cutoff and the replay gate would skip the reused
	// LSNs. Matters under -fsync interval (group commit); a no-op under
	// -fsync always.
	if err := s.dur.st.Sync(); err != nil {
		cw.Abort()
		return fmt.Errorf("server: checkpoint: sync wal: %w", err)
	}
	if err := cw.Commit(); err != nil {
		return err
	}
	s.met.checkpoints.Add(1)
	return nil
}

// checkpointLoop checkpoints on the configured interval until Shutdown.
func (s *Server) checkpointLoop() {
	defer s.dur.wg.Done()
	t := time.NewTicker(s.dur.every)
	defer t.Stop()
	for {
		select {
		case <-s.dur.stop:
			return
		case <-t.C:
			if err := s.Checkpoint(); err != nil {
				s.met.checkpointErrors.Add(1)
				s.log.Warn("interval checkpoint failed", "err", err)
			}
		}
	}
}

// appendIngestWAL logs an ingest batch for e, passing only the columns
// its kind uses, and returns the record's LSN. Caller holds walMu.
func (s *Server) appendIngestWAL(e *entry, b *ingestBatch) (uint64, error) {
	var ws []float64
	var ats []int64
	switch e.cfg.Kind {
	case KindWeighted:
		ws = b.ws
	case KindRollup:
		ats = b.ats
	}
	return s.dur.st.AppendIngest(e.cfg.Name, b.items, ws, ats)
}

// applyPush merges decoded pushed bins into a weighted entry — the
// DecodeBins → MergeBins fast path — and records the applied LSN (0 =
// not durable).
func (s *Server) applyPush(e *entry, pushed []uss.Bin, red uss.Reduction, lsn uint64) applyResult {
	if err := s.ensureLive(e); err != nil {
		return applyResult{err: err}
	}
	m := e.cfg.Bins
	e.mu.Lock()
	merged := uss.MergeBins(m, red, e.weighted.Bins(), pushed)
	nw, err := uss.NewWeightedFromBins(m, merged, e.cfg.options()...)
	if err != nil {
		e.mu.Unlock()
		return applyResult{err: fmt.Errorf("load merged bins: %w", err)}
	}
	e.weighted = nw
	e.qe, e.prep = nil, nil // engines are bound to the replaced sketch
	// Counter and watermark advance together under the entry lock, so a
	// concurrent checkpoint persists the push in both or in neither.
	e.pushes.Add(1)
	if lsn > 0 {
		e.appliedLSN.Store(lsn)
	}
	size, total := nw.Size(), nw.Total()
	e.mu.Unlock()
	s.met.snapshotsIn.Add(1)
	return applyResult{size: size, total: total}
}
