package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	uss "repro"
	"repro/internal/store"
)

// Cluster support: the exported surface internal/cluster drives a node
// through. A cluster agent needs four things from the server it wraps
// that the HTTP API does not expose directly: exact per-sketch state
// blobs (the checkpoint encoding, not a lossy snapshot), the inverse
// restore, cheap divergence digests for anti-entropy, and the ingest
// body parser so the proxy can partition rows without re-implementing
// the wire formats.

// SketchStats is the exported counter snapshot that travels with a
// sketch state blob, so a restore lands the counters and the state as
// one consistent cut.
type SketchStats struct {
	// Rows is the applied ingest row count.
	Rows int64 `json:"rows"`
	// Pushes is the merged-snapshot count.
	Pushes int64 `json:"pushes"`
	// Dropped counts rollup rows past the retention horizon.
	Dropped int64 `json:"dropped"`
}

// SketchDigest is one sketch's anti-entropy fingerprint: enough to
// detect divergence between an owner's partial and a peer's copy of it
// without shipping state. Counters only — comparing (rows, pushes,
// total) is exact for the cluster's disjoint-substream partials, where
// equal history implies equal state.
type SketchDigest struct {
	// Name is the sketch name.
	Name string `json:"name"`
	// Kind is the sketch kind.
	Kind Kind `json:"kind"`
	// Rows is the applied ingest row count.
	Rows int64 `json:"rows"`
	// Pushes is the merged-snapshot count.
	Pushes int64 `json:"pushes"`
	// Total is the sketch's total mass (sum over windows for rollups).
	Total float64 `json:"total"`
}

// Covers reports whether d's history is at least as long as other's —
// the replace-if-ahead test anti-entropy uses. Counters are monotone,
// so a digest that leads on every axis strictly covers the other's
// history for the same substream.
func (d SketchDigest) Covers(other SketchDigest) bool {
	return d.Rows >= other.Rows && d.Pushes >= other.Pushes
}

// SketchState returns one sketch's config, counters and exact state
// blob — the checkpoint encoding (AppendBinary for unit/weighted,
// AppendShards for sharded, AppendWindows for rollup), cut under the
// entry lock so blob and counters describe the same instant. The blob
// restores through RestoreSketch; unit/weighted blobs also decode
// directly with uss.DecodeBins (see StateBins).
func (s *Server) SketchState(name string) (SketchConfig, SketchStats, []byte, error) {
	e, ok := s.reg.Get(name)
	if !ok {
		return SketchConfig{}, SketchStats{}, nil, fmt.Errorf("sketch %q: %w", name, ErrNotFound)
	}
	e.lastAccess.Store(time.Now().UnixNano())
	e.mu.Lock()
	blob, err := e.encodeState()
	st := SketchStats{Rows: e.rows.Load(), Pushes: e.pushes.Load(), Dropped: e.dropped.Load()}
	e.mu.Unlock()
	if err != nil {
		return SketchConfig{}, SketchStats{}, nil, fmt.Errorf("sketch %q: encode state: %w", name, err)
	}
	return e.cfg, st, blob, nil
}

// RestoreSketch installs a sketch from a peer-shipped (config, stats,
// state) triple: create-or-replace. A missing sketch is created (with a
// WAL create record on a durable server); an existing one with the same
// config has its state and counters replaced wholesale. Replacement is
// sound only because cluster partials are snapshots of one monotone
// substream — the caller must have checked that the incoming digest
// Covers the local one, or history is lost.
//
// Quiesced use only (boot repair, before the node serves traffic): the
// replace path moves the durable watermarks to the log's LastLSN so
// already-logged records do not replay on top of the restored state,
// which assumes nothing for this sketch is in flight. Durable callers
// must Checkpoint() after the last restore to make the adopted state
// the recovery baseline.
func (s *Server) RestoreSketch(cfg SketchConfig, stats SketchStats, blob []byte) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	rb, err := store.NewRebuilt(specFromConfig(cfg))
	if err != nil {
		return err
	}
	if len(blob) > 0 {
		if err := rb.RestoreState(blob); err != nil {
			return fmt.Errorf("sketch %q: restore state: %w", cfg.Name, err)
		}
	}
	if e, ok := s.reg.Get(cfg.Name); ok {
		if e.cfg != cfg {
			return fmt.Errorf("sketch %q: config mismatch: have %+v, restoring %+v", cfg.Name, e.cfg, cfg)
		}
		e.mu.Lock()
		e.unit, e.weighted, e.sharded, e.rollup = rb.Unit, rb.Weighted, rb.Sharded, rb.Rollup
		e.qe, e.prep = nil, nil // engines are bound to the replaced sketch
		e.cold.Store(false)     // the restored state supersedes any cold blob
		e.rows.Store(stats.Rows)
		e.pushes.Store(stats.Pushes)
		e.dropped.Store(stats.Dropped)
		if s.dur != nil {
			lsn := s.dur.st.LastLSN()
			e.appliedLSN.Store(lsn)
			e.appendedLSN.Store(lsn)
		}
		e.mu.Unlock()
		return nil
	}
	ne := &entry{cfg: cfg}
	ne.unit, ne.weighted, ne.sharded, ne.rollup = rb.Unit, rb.Weighted, rb.Sharded, rb.Rollup
	ne.rows.Store(stats.Rows)
	ne.pushes.Store(stats.Pushes)
	ne.dropped.Store(stats.Dropped)
	if s.dur == nil {
		return s.reg.adopt(ne)
	}
	s.dur.walMu.Lock()
	defer s.dur.walMu.Unlock()
	spec, err := json.Marshal(specFromConfig(cfg))
	if err != nil {
		return err
	}
	if _, err := s.dur.st.AppendCreate(spec); err != nil {
		return err
	}
	lsn := s.dur.st.LastLSN()
	ne.appliedLSN.Store(lsn)
	ne.appendedLSN.Store(lsn)
	return s.reg.adopt(ne)
}

// StateBins flattens a SketchState blob into a mergeable bin list for
// scatter-gather reads: unit and weighted blobs are wire-v2 snapshots
// and decode directly; sharded blobs are restored into a scratch
// ShardedSketch and collapsed through Snapshot (an exact merge when the
// union fits the combined shard capacity, as a faithful copy always
// does). Rollup state is windowed and has no flat bin view — range
// reads forward the query instead.
func StateBins(cfg SketchConfig, blob []byte) ([]uss.Bin, error) {
	switch cfg.Kind {
	case KindUnit, KindWeighted:
		return uss.DecodeBins(blob)
	case KindSharded:
		sh := uss.NewSharded(cfg.Shards, cfg.Bins, cfg.options()...)
		if err := sh.RestoreShards(blob); err != nil {
			return nil, err
		}
		return sh.Snapshot(0).Bins(), nil
	default:
		return nil, fmt.Errorf("sketch %q: %s state has no flat bin view", cfg.Name, cfg.Kind)
	}
}

// Digests fingerprints every hosted sketch for anti-entropy gossip,
// sorted by name.
func (s *Server) Digests() []SketchDigest {
	entries := s.reg.List()
	out := make([]SketchDigest, len(entries))
	for i, e := range entries {
		info := e.info()
		out[i] = SketchDigest{
			Name: e.cfg.Name, Kind: e.cfg.Kind,
			Rows: info.Rows, Pushes: info.Pushes, Total: info.Total,
		}
	}
	return out
}

// SketchConfigOf reports a hosted sketch's config.
func (s *Server) SketchConfigOf(name string) (SketchConfig, bool) {
	e, ok := s.reg.Get(name)
	if !ok {
		return SketchConfig{}, false
	}
	return e.cfg, true
}

// DeleteSketch drops a hosted sketch exactly as DELETE /v1/sketches
// does, including the WAL delete record on a durable server — the
// programmatic entry point the cluster delete broadcast uses. The bool
// reports whether the sketch existed.
func (s *Server) DeleteSketch(name string) (bool, error) {
	return s.deleteSketch(name)
}

// SumPredicate exposes the sum endpoints' prefix/suffix/items predicate
// parser, so cluster scatter-gather sums evaluate exactly the
// single-node semantics.
func SumPredicate(r *http.Request) (func(string) bool, error) {
	return sumPredicate(r)
}

// IngestRows is a decoded ingest body in columnar form: one item per
// row, with the weight column populated for weighted sketches and the
// timestamp column for rollups.
type IngestRows struct {
	// Items is the item label column.
	Items []string
	// Weights aligns with Items for weighted sketches (else empty).
	Weights []float64
	// Ats aligns with Items for rollups (else empty).
	Ats []int64
}

// ParseIngestBody decodes an ingest request body exactly as the ingest
// handler does — newline text unless contentType is application/json —
// into columnar rows. The cluster proxy uses it to partition a batch
// across owner nodes without re-implementing either wire format;
// rejected bodies fail here with the same errors the handler returns.
func ParseIngestBody(kind Kind, contentType string, body []byte) (IngestRows, error) {
	b := &ingestBatch{buf: body}
	if !strings.HasPrefix(contentType, "application/json") {
		if err := b.parseText(kind); err != nil {
			return IngestRows{}, err
		}
		return IngestRows{Items: b.items, Weights: b.ws, Ats: b.ats}, nil
	}
	var req ingestJSON
	if err := json.Unmarshal(body, &req); err != nil {
		return IngestRows{}, fmt.Errorf("decode ingest body: %w", err)
	}
	if err := b.appendJSONRows(kind, &req); err != nil {
		return IngestRows{}, err
	}
	return IngestRows{Items: b.items, Weights: b.ws, Ats: b.ats}, nil
}
