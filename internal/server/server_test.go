package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	uss "repro"
)

// testServer mounts a fresh Server under httptest and tears both down.
func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{IngestWorkers: 2, QueueDepth: 8})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

// doJSON issues a request with a JSON body and decodes the JSON response.
func doJSON(t *testing.T, method, url string, body any, out any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode %s %s response %q: %v", method, url, data, err)
		}
	}
	return resp
}

func create(t *testing.T, ts *httptest.Server, cfg SketchConfig) {
	t.Helper()
	resp := doJSON(t, "POST", ts.URL+"/v1/sketches", cfg, nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create %+v: status %d", cfg, resp.StatusCode)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []SketchConfig{
		{Name: "", Kind: KindUnit, Bins: 8},                                 // empty name
		{Name: "x", Kind: KindUnit, Bins: 0},                                // no bins
		{Name: "x", Kind: "bogus", Bins: 8},                                 // unknown kind
		{Name: "x", Kind: KindRollup, Bins: 8},                              // rollup sans window
		{Name: "x", Kind: KindRollup, Bins: 8, WindowLength: 5, Retain: -1}, // negative retain
	}
	for _, cfg := range cases {
		if _, err := NewRegistry().Create(cfg); err == nil {
			t.Errorf("Create(%+v) succeeded, want error", cfg)
		}
	}

	reg := NewRegistry()
	if _, err := reg.Create(SketchConfig{Name: "a", Kind: KindUnit, Bins: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create(SketchConfig{Name: "a", Kind: KindUnit, Bins: 8}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	// Kind defaults to sharded, shards default to 8.
	e, err := reg.Create(SketchConfig{Name: "b", Bins: 4})
	if err != nil {
		t.Fatal(err)
	}
	if e.cfg.Kind != KindSharded || e.cfg.Shards != 8 {
		t.Fatalf("defaults: got kind %q shards %d", e.cfg.Kind, e.cfg.Shards)
	}
	if e.capacity() != 32 {
		t.Fatalf("sharded capacity = %d, want 32", e.capacity())
	}
}

func TestCreateIngestQueryLifecycle(t *testing.T) {
	_, ts := testServer(t)
	create(t, ts, SketchConfig{Name: "clicks", Kind: KindSharded, Bins: 64, Shards: 4, Seed: 7})

	// Sync text ingest: labels in the dim=value encoding.
	var rows strings.Builder
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&rows, "country=%s|device=d%d\n", []string{"us", "de", "jp"}[i%3], i%2)
	}
	resp, err := http.Post(ts.URL+"/v1/sketches/clicks/ingest?sync=1", "text/plain",
		strings.NewReader(rows.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync ingest status %d", resp.StatusCode)
	}

	var info sketchInfo
	doJSON(t, "GET", ts.URL+"/v1/sketches/clicks", nil, &info)
	if info.Rows != 300 || info.Total != 300 {
		t.Fatalf("info rows=%d total=%v, want 300", info.Rows, info.Total)
	}

	// Template query, twice: the second run rides the prepared cache.
	q := map[string]any{
		"where":    []map[string]any{{"dim": "country", "in": []string{"us", "de"}}},
		"group_by": []string{"country"},
	}
	for pass := 0; pass < 2; pass++ {
		var qr struct {
			Groups []groupDTO `json:"groups"`
		}
		doJSON(t, "POST", ts.URL+"/v1/sketches/clicks/query", q, &qr)
		if len(qr.Groups) != 2 {
			t.Fatalf("pass %d: %d groups, want 2", pass, len(qr.Groups))
		}
		var sum float64
		for _, g := range qr.Groups {
			if g.Key["country"] != "us" && g.Key["country"] != "de" {
				t.Fatalf("pass %d: unexpected group %q", pass, g.KeyString)
			}
			sum += g.Value
		}
		if sum != 200 { // every row is tracked at 300 rows vs 256 bins... sums stay exact here
			t.Fatalf("pass %d: filtered sum %v, want 200", pass, sum)
		}
	}

	// Top-k off the cached snapshot.
	var tk struct {
		Items []binDTO `json:"items"`
	}
	doJSON(t, "GET", ts.URL+"/v1/sketches/clicks/topk?k=3", nil, &tk)
	if len(tk.Items) != 3 {
		t.Fatalf("topk returned %d items", len(tk.Items))
	}

	// Subset sum with a prefix predicate.
	var est estimateDTO
	doJSON(t, "GET", ts.URL+"/v1/sketches/clicks/sum?prefix=country=jp", nil, &est)
	if est.Value != 100 {
		t.Fatalf("prefix sum %v, want 100", est.Value)
	}

	// Delete, then 404.
	resp = doJSON(t, "DELETE", ts.URL+"/v1/sketches/clicks", nil, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	resp = doJSON(t, "GET", ts.URL+"/v1/sketches/clicks", nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("post-delete info status %d", resp.StatusCode)
	}
}

// TestListSketches covers GET /v1/sketches: every tenant enumerated
// with its name, kind and row count, sorted by name, without any
// out-of-band bookkeeping.
func TestListSketches(t *testing.T) {
	_, ts := testServer(t)
	create(t, ts, SketchConfig{Name: "zeta", Kind: KindUnit, Bins: 16, Seed: 1})
	create(t, ts, SketchConfig{Name: "alpha", Kind: KindSharded, Bins: 32, Shards: 2, Seed: 2})
	create(t, ts, SketchConfig{Name: "mid", Kind: KindRollup, Bins: 16, WindowLength: 10, Seed: 3})

	resp, err := http.Post(ts.URL+"/v1/sketches/zeta/ingest?sync=1", "text/plain", strings.NewReader("a\nb\nc\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var listed struct {
		Sketches []sketchInfo `json:"sketches"`
	}
	doJSON(t, "GET", ts.URL+"/v1/sketches", nil, &listed)
	if len(listed.Sketches) != 3 {
		t.Fatalf("listed %d sketches, want 3", len(listed.Sketches))
	}
	wantOrder := []string{"alpha", "mid", "zeta"}
	wantKind := map[string]Kind{"alpha": KindSharded, "mid": KindRollup, "zeta": KindUnit}
	for i, info := range listed.Sketches {
		if info.Name != wantOrder[i] {
			t.Errorf("list[%d] = %q, want %q (sorted)", i, info.Name, wantOrder[i])
		}
		if info.Kind != wantKind[info.Name] {
			t.Errorf("list %q kind = %q, want %q", info.Name, info.Kind, wantKind[info.Name])
		}
	}
	if listed.Sketches[2].Rows != 3 {
		t.Errorf("zeta rows = %d, want 3", listed.Sketches[2].Rows)
	}
	if listed.Sketches[0].Capacity != 64 {
		t.Errorf("alpha capacity = %d, want 64", listed.Sketches[0].Capacity)
	}
}

// TestBatchPoolHighWaterMark pins the pooled-buffer retention bound:
// batches whose buffers outgrew the high-water marks are dropped instead
// of pooled, so one giant snapshot cannot pin memory forever.
func TestBatchPoolHighWaterMark(t *testing.T) {
	small := getBatch()
	small.buf = append(small.buf, make([]byte, 4096)...)
	small.items = append(small.items, "x")
	if !small.poolable() {
		t.Fatal("small batch rejected from the pool")
	}

	big := getBatch()
	big.buf = append(big.buf, make([]byte, maxPooledBufBytes+1)...)
	if big.poolable() {
		t.Fatal("oversized body buffer accepted into the pool")
	}

	wide := getBatch()
	wide.items = append(wide.items, make([]string, maxPooledRows+1)...)
	if wide.poolable() {
		t.Fatal("oversized item column accepted into the pool")
	}
	putBatch(small)
	putBatch(big)
	putBatch(wide)
}

func TestAsyncIngestDrainsOnShutdown(t *testing.T) {
	s := New(Config{IngestWorkers: 2, QueueDepth: 4})
	ts := httptest.NewServer(s.Handler())
	create(t, ts, SketchConfig{Name: "a", Kind: KindUnit, Bins: 32, Seed: 1})

	total := 0
	for batch := 0; batch < 10; batch++ {
		var rows strings.Builder
		for i := 0; i < 50; i++ {
			fmt.Fprintf(&rows, "item-%d\n", i)
		}
		resp, err := http.Post(ts.URL+"/v1/sketches/a/ingest", "text/plain",
			strings.NewReader(rows.String()))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("async ingest status %d", resp.StatusCode)
		}
		total += 50
	}
	ts.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Every 202-acknowledged row must be applied after Shutdown returns.
	e, ok := s.Registry().Get("a")
	if !ok {
		t.Fatal("entry gone")
	}
	if got := e.rows.Load(); got != int64(total) {
		t.Fatalf("rows applied = %d, want %d", got, total)
	}
}

func TestWeightedIngestAndPushPull(t *testing.T) {
	_, ts := testServer(t)
	create(t, ts, SketchConfig{Name: "acc", Kind: KindWeighted, Bins: 256, Seed: 3})

	// Weighted text rows: item TAB weight.
	body := "alpha\t2.5\nbeta\t4\ngamma\n"
	resp, err := http.Post(ts.URL+"/v1/sketches/acc/ingest?sync=1", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var info sketchInfo
	doJSON(t, "GET", ts.URL+"/v1/sketches/acc", nil, &info)
	if info.Total != 7.5 {
		t.Fatalf("weighted total %v, want 7.5", info.Total)
	}

	// Push an agent snapshot; the server merges it in.
	agent := uss.New(64, uss.WithSeed(9))
	for i := 0; i < 500; i++ {
		agent.Update(fmt.Sprintf("agent-item-%d", i%20))
	}
	blob, err := agent.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/sketches/acc/snapshot", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	var pushed struct {
		MergedBins int     `json:"merged_bins"`
		Total      float64 `json:"total"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pushed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("push status %d", resp.StatusCode)
	}
	if pushed.Total != 507.5 {
		t.Fatalf("post-push total %v, want 507.5", pushed.Total)
	}

	// Pull round-trips as a wire-v2 snapshot that restores client-side.
	resp, err = http.Get(ts.URL + "/v1/sketches/acc/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	pulled, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	sinfo, err := uss.InspectSnapshot(pulled)
	if err != nil {
		t.Fatal(err)
	}
	if sinfo.Version != 2 || !sinfo.Weighted {
		t.Fatalf("pulled snapshot info %+v, want v2 weighted", sinfo)
	}
	var back uss.WeightedSketch
	if err := back.UnmarshalBinary(pulled); err != nil {
		t.Fatal(err)
	}
	if back.Total() != 507.5 {
		t.Fatalf("restored total %v, want 507.5", back.Total())
	}
	if got := back.Estimate("beta"); got != 4 {
		t.Fatalf("restored beta estimate %v, want 4", got)
	}

	// Push into a non-weighted sketch is rejected.
	create(t, ts, SketchConfig{Name: "u", Kind: KindUnit, Bins: 8})
	resp, err = http.Post(ts.URL+"/v1/sketches/u/snapshot", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("push into unit sketch: status %d, want 400", resp.StatusCode)
	}
}

func TestRollupRangeEndpoints(t *testing.T) {
	_, ts := testServer(t)
	create(t, ts, SketchConfig{Name: "daily", Kind: KindRollup, Bins: 64, WindowLength: 10, Retain: 5, Seed: 11})

	// Three windows of rows: item TAB timestamp.
	var rows strings.Builder
	for day := 0; day < 3; day++ {
		for i := 0; i < 40; i++ {
			fmt.Fprintf(&rows, "day%d-item%d\t%d\n", day, i%4, day*10+i%10)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/sketches/daily/ingest?sync=1", "text/plain", strings.NewReader(rows.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var total struct {
		Total float64 `json:"total"`
	}
	doJSON(t, "GET", ts.URL+"/v1/sketches/daily/range/total?from=0&to=29", nil, &total)
	if total.Total != 120 {
		t.Fatalf("range total %v, want 120", total.Total)
	}

	var est estimateDTO
	doJSON(t, "GET", ts.URL+"/v1/sketches/daily/range/sum?from=10&to=19&prefix=day1-", nil, &est)
	if est.Value != 40 {
		t.Fatalf("day1 range sum %v, want 40", est.Value)
	}

	var tk struct {
		Items []binDTO `json:"items"`
	}
	doJSON(t, "GET", ts.URL+"/v1/sketches/daily/range/topk?from=0&to=29&k=5", nil, &tk)
	if len(tk.Items) != 5 {
		t.Fatalf("range topk returned %d items", len(tk.Items))
	}

	// Uncovered range is a 404.
	resp = doJSON(t, "GET", ts.URL+"/v1/sketches/daily/range/sum?from=500&to=600&prefix=x", nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("uncovered range status %d, want 404", resp.StatusCode)
	}

	// Non-range endpoints reject rollups.
	resp = doJSON(t, "GET", ts.URL+"/v1/sketches/daily/topk", nil, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("rollup topk status %d, want 400", resp.StatusCode)
	}
}

func TestMetricsAndHealthz(t *testing.T) {
	_, ts := testServer(t)
	create(t, ts, SketchConfig{Name: "m", Kind: KindUnit, Bins: 16, Seed: 2})
	resp, err := http.Post(ts.URL+"/v1/sketches/m/ingest?sync=1", "text/plain", strings.NewReader("a\nb\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var hz struct {
		Status string `json:"status"`
	}
	doJSON(t, "GET", ts.URL+"/healthz", nil, &hz)
	if hz.Status != "ok" {
		t.Fatalf("healthz status %q", hz.Status)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"ussd_rows_ingested_total 2",
		`ussd_sketch_rows{name="m",kind="unit"} 2`,
		"ussd_sketches 1",
		"ussd_http_requests_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
}

func TestIngestErrors(t *testing.T) {
	_, ts := testServer(t)
	create(t, ts, SketchConfig{Name: "r", Kind: KindRollup, Bins: 16, WindowLength: 10})
	create(t, ts, SketchConfig{Name: "w", Kind: KindWeighted, Bins: 16})

	post := func(name, ct, body string) int {
		resp, err := http.Post(ts.URL+"/v1/sketches/"+name+"/ingest?sync=1", ct, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("r", "text/plain", "no-timestamp\n"); code != http.StatusBadRequest {
		t.Errorf("rollup row without timestamp: status %d", code)
	}
	if code := post("w", "text/plain", "item\tnot-a-number\n"); code != http.StatusBadRequest {
		t.Errorf("bad weight: status %d", code)
	}
	if code := post("w", "application/json", `{"items":["a"],"rows":[{"item":"b","weight":-1}]}`); code != http.StatusBadRequest {
		t.Errorf("negative JSON weight: status %d", code)
	}
	if code := post("r", "application/json", `{"items":["a"]}`); code != http.StatusBadRequest {
		t.Errorf("rollup bare items: status %d", code)
	}
	// JSON rows path applies cleanly.
	if code := post("w", "application/json", `{"rows":[{"item":"a","weight":2},{"item":"b"}]}`); code != http.StatusOK {
		t.Errorf("JSON weighted ingest: status %d", code)
	}
	var info sketchInfo
	doJSON(t, "GET", ts.URL+"/v1/sketches/w", nil, &info)
	if info.Total != 3 {
		t.Errorf("weighted total after JSON ingest = %v, want 3", info.Total)
	}
}

// TestWeightedJSONIngestMixedItemsAndRows pins the weight-column
// alignment: bare items (implicit weight 1) must not consume the weights
// of the rows that follow them in the same body.
func TestWeightedJSONIngestMixedItemsAndRows(t *testing.T) {
	_, ts := testServer(t)
	create(t, ts, SketchConfig{Name: "w", Kind: KindWeighted, Bins: 16, Seed: 4})
	resp, err := http.Post(ts.URL+"/v1/sketches/w/ingest?sync=1", "application/json",
		strings.NewReader(`{"items":["a","b"],"rows":[{"item":"c","weight":5}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mixed ingest status %d", resp.StatusCode)
	}
	for item, want := range map[string]float64{"a": 1, "b": 1, "c": 5} {
		var got struct {
			Estimate float64 `json:"estimate"`
		}
		doJSON(t, "GET", ts.URL+"/v1/sketches/w/estimate?item="+item, nil, &got)
		if got.Estimate != want {
			t.Errorf("estimate %q = %v, want %v", item, got.Estimate, want)
		}
	}
}

// TestQueryCacheKeyDistinguishesSpecs pins the prepared-query cache key:
// specs that collide under a naive fmt %v rendering (In:["us","de"] vs
// In:["us de"]) must compile and serve distinct queries.
func TestQueryCacheKeyDistinguishesSpecs(t *testing.T) {
	_, ts := testServer(t)
	create(t, ts, SketchConfig{Name: "q", Kind: KindUnit, Bins: 32, Seed: 6})
	resp, err := http.Post(ts.URL+"/v1/sketches/q/ingest?sync=1", "text/plain",
		strings.NewReader("country=us|x=1\ncountry=de|x=1\ncountry=us de|x=1\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	run := func(body string) float64 {
		var qr struct {
			Groups []groupDTO `json:"groups"`
		}
		doJSON(t, "POST", ts.URL+"/v1/sketches/q/query", json.RawMessage(body), &qr)
		var sum float64
		for _, g := range qr.Groups {
			sum += g.Value
		}
		return sum
	}
	two := `{"where":[{"dim":"country","in":["us","de"]}]}`
	one := `{"where":[{"dim":"country","in":["us de"]}]}`
	if got := run(two); got != 2 {
		t.Errorf("in:[us,de] sum = %v, want 2", got)
	}
	if got := run(one); got != 1 {
		t.Errorf("in:[\"us de\"] sum = %v, want 1 (cache key collision?)", got)
	}
	// And again in the opposite order against warm caches.
	if got := run(two); got != 2 {
		t.Errorf("repeat in:[us,de] sum = %v, want 2", got)
	}
}
