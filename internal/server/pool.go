package server

import (
	"fmt"
	"io"
	"strconv"
	"sync"
)

// ingestBatch is one decoded ingest request: the raw body bytes plus the
// parsed per-row columns. Batches are pooled — the handler checks one out,
// reads and parses the body into it, and the ingest worker returns it
// after applying the rows — so a steady stream of ingest requests reuses
// the same few buffers instead of allocating per request. The item strings
// themselves are fresh allocations by necessity: sketches retain them.
type ingestBatch struct {
	buf   []byte    // raw request body
	items []string  // one item label per row
	ws    []float64 // weights (weighted kind; 1 when absent)
	ats   []int64   // timestamps (rollup kind)
}

var ingestPool = sync.Pool{New: func() any { return new(ingestBatch) }}

// Pool retention high-water marks: a batch whose buffers grew past these
// caps is dropped on put instead of pooled, so one giant request — a
// 32 MiB snapshot push, a bulk backfill — cannot pin its buffers in the
// pool for the rest of the process's life. Steady ingest traffic sits
// far below both marks and keeps its zero-allocation reuse.
const (
	maxPooledBufBytes = 1 << 20 // raw body buffer cap, bytes
	maxPooledRows     = 1 << 16 // parsed column caps, rows
)

// getBatch checks a reset batch out of the pool.
func getBatch() *ingestBatch {
	b := ingestPool.Get().(*ingestBatch)
	b.buf = b.buf[:0]
	b.items = b.items[:0]
	b.ws = b.ws[:0]
	b.ats = b.ats[:0]
	return b
}

// poolable reports whether the batch's buffers are under the retention
// high-water marks.
func (b *ingestBatch) poolable() bool {
	return cap(b.buf) <= maxPooledBufBytes && cap(b.items) <= maxPooledRows &&
		cap(b.ws) <= maxPooledRows && cap(b.ats) <= maxPooledRows
}

// putBatch returns a batch to the pool, unless its buffers outgrew the
// high-water marks — those are dropped for the GC. The item strings
// handed to the sketch stay alive either way; only the slice headers are
// reused.
func putBatch(b *ingestBatch) {
	if !b.poolable() {
		return
	}
	ingestPool.Put(b)
}

// readBody reads r into the batch's pooled buffer, rejecting bodies over
// limit bytes.
func (b *ingestBatch) readBody(r io.Reader, limit int64) error {
	for {
		if len(b.buf) == cap(b.buf) {
			b.buf = append(b.buf, 0)[:len(b.buf)]
		}
		n, err := r.Read(b.buf[len(b.buf):cap(b.buf)])
		b.buf = b.buf[:len(b.buf)+n]
		if int64(len(b.buf)) > limit {
			return fmt.Errorf("request body exceeds %d bytes", limit)
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// parseText parses the newline-separated text ingest format into the
// batch's columns. Each line is one row:
//
//	unit, sharded:  item
//	weighted:       item [TAB weight]     (weight defaults to 1)
//	rollup:         item TAB timestamp    (integer, the row's window time)
//
// Empty lines are skipped; a trailing CR (CRLF input) is trimmed. For the
// tab-separated kinds the item must not itself contain a tab.
func (b *ingestBatch) parseText(kind Kind) error {
	buf := b.buf
	line := 0
	for len(buf) > 0 {
		line++
		nl := -1
		for i, c := range buf {
			if c == '\n' {
				nl = i
				break
			}
		}
		var row []byte
		if nl >= 0 {
			row, buf = buf[:nl], buf[nl+1:]
		} else {
			row, buf = buf, nil
		}
		if len(row) > 0 && row[len(row)-1] == '\r' {
			row = row[:len(row)-1]
		}
		if len(row) == 0 {
			continue
		}
		switch kind {
		case KindUnit, KindSharded:
			b.items = append(b.items, string(row))
		case KindWeighted:
			item, rest, hasTab := cutTab(row)
			w := 1.0
			if hasTab {
				var err error
				w, err = strconv.ParseFloat(string(rest), 64)
				if err != nil || w <= 0 {
					return fmt.Errorf("line %d: bad weight %q", line, rest)
				}
			}
			if len(item) == 0 {
				return fmt.Errorf("line %d: empty item", line)
			}
			b.items = append(b.items, string(item))
			b.ws = append(b.ws, w)
		case KindRollup:
			item, rest, hasTab := cutTab(row)
			if !hasTab || len(item) == 0 {
				return fmt.Errorf("line %d: rollup rows need item TAB timestamp", line)
			}
			at, err := strconv.ParseInt(string(rest), 10, 64)
			if err != nil {
				return fmt.Errorf("line %d: bad timestamp %q", line, rest)
			}
			b.items = append(b.items, string(item))
			b.ats = append(b.ats, at)
		}
	}
	return nil
}

// cutTab splits row at its first tab.
func cutTab(row []byte) (before, after []byte, found bool) {
	for i, c := range row {
		if c == '\t' {
			return row[:i], row[i+1:], true
		}
	}
	return row, nil, false
}
