package server

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
)

// TestErrorMappingTable pins the HTTP error contract on every endpoint:
// an unknown sketch name is 404 everywhere, a duplicate create is 409,
// and a validation failure is 400 — never the 409 create once answered
// for bad configs.
func TestErrorMappingTable(t *testing.T) {
	_, ts := testServer(t)
	create(t, ts, SketchConfig{Name: "w", Kind: KindWeighted, Bins: 8})
	create(t, ts, SketchConfig{Name: "u", Kind: KindUnit, Bins: 8})
	create(t, ts, SketchConfig{Name: "ru", Kind: KindRollup, Bins: 8, WindowLength: 60})

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		ctype  string
		want   int
	}{
		// Not-found: every {name} endpoint answers 404 for a missing sketch.
		{"info missing", "GET", "/v1/sketches/ghost", "", "", 404},
		{"delete missing", "DELETE", "/v1/sketches/ghost", "", "", 404},
		{"ingest missing", "POST", "/v1/sketches/ghost/ingest", "a\n", "text/plain", 404},
		{"push missing", "POST", "/v1/sketches/ghost/snapshot", "x", "application/octet-stream", 404},
		{"pull missing", "GET", "/v1/sketches/ghost/snapshot", "", "", 404},
		{"topk missing", "GET", "/v1/sketches/ghost/topk", "", "", 404},
		{"estimate missing", "GET", "/v1/sketches/ghost/estimate?item=a", "", "", 404},
		{"sum missing", "GET", "/v1/sketches/ghost/sum?prefix=a", "", "", 404},
		{"query missing", "POST", "/v1/sketches/ghost/query", "{}", "application/json", 404},
		{"range topk missing", "GET", "/v1/sketches/ghost/range/topk?from=0&to=1", "", "", 404},
		{"range sum missing", "GET", "/v1/sketches/ghost/range/sum?from=0&to=1&prefix=a", "", "", 404},
		{"range total missing", "GET", "/v1/sketches/ghost/range/total?from=0&to=1", "", "", 404},

		// Conflict: only a duplicate name is 409.
		{"create duplicate", "POST", "/v1/sketches", `{"name":"w","kind":"weighted","bins":8}`, "application/json", 409},

		// Bad request: validation failures are the caller's error, 400.
		{"create no bins", "POST", "/v1/sketches", `{"name":"z","kind":"unit"}`, "application/json", 400},
		{"create bad kind", "POST", "/v1/sketches", `{"name":"z","kind":"bogus","bins":8}`, "application/json", 400},
		{"create bad json", "POST", "/v1/sketches", `{"name":`, "application/json", 400},
		{"ingest bad body", "POST", "/v1/sketches/w/ingest", `{"rows":[{"item":""}]}`, "application/json", 400},
		{"push non-weighted", "POST", "/v1/sketches/u/snapshot", "x", "application/octet-stream", 400},
		{"push bad blob", "POST", "/v1/sketches/w/snapshot", "not a snapshot", "application/octet-stream", 400},
		{"pull rollup", "GET", "/v1/sketches/ru/snapshot", "", "", 400},
		{"topk on rollup", "GET", "/v1/sketches/ru/topk", "", "", 400},
		{"estimate no item", "GET", "/v1/sketches/w/estimate", "", "", 400},
		{"sum no predicate", "GET", "/v1/sketches/w/sum", "", "", 400},
		{"range on non-rollup", "GET", "/v1/sketches/w/range/topk?from=0&to=1", "", "", 400},
		{"range bad from", "GET", "/v1/sketches/ru/range/topk?from=x&to=1", "", "", 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var rd *bytes.Reader
			if tc.body != "" {
				rd = bytes.NewReader([]byte(tc.body))
			} else {
				rd = bytes.NewReader(nil)
			}
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, rd)
			if err != nil {
				t.Fatal(err)
			}
			if tc.ctype != "" {
				req.Header.Set("Content-Type", tc.ctype)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
			}
		})
	}
}

// TestStatusFor pins the sentinel→status table directly, including
// wrapped sentinels.
func TestStatusFor(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Create(SketchConfig{Name: "a", Kind: KindUnit, Bins: 8}); err != nil {
		t.Fatal(err)
	}
	_, dup := reg.Create(SketchConfig{Name: "a", Kind: KindUnit, Bins: 8})
	if got := statusFor(dup); got != http.StatusConflict {
		t.Errorf("statusFor(%v) = %d, want 409", dup, got)
	}
	_, bad := reg.Create(SketchConfig{Name: "b", Kind: "bogus", Bins: 8})
	if got := statusFor(bad); got != http.StatusBadRequest {
		t.Errorf("statusFor(%v) = %d, want 400", bad, got)
	}
	if !strings.Contains(dup.Error(), "a") {
		t.Errorf("duplicate error %q does not name the sketch", dup)
	}
	miss := ErrNotFound
	if got := statusFor(miss); got != http.StatusNotFound {
		t.Errorf("statusFor(ErrNotFound) = %d, want 404", got)
	}
}
