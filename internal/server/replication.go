package server

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	uss "repro"
	"repro/internal/faultinject"
	"repro/internal/store"
)

// Role is a server's replication role. A primary accepts client
// mutations and serves the WAL stream; a follower rejects client
// mutations and applies records its replica loop pulls from the
// primary. Queries are served in both roles.
type Role int32

// The two replication roles.
const (
	RolePrimary Role = iota
	RoleFollower
)

// String renders the role for status endpoints and logs.
func (r Role) String() string {
	if r == RoleFollower {
		return "follower"
	}
	return "primary"
}

// ErrNotFollower reports a replicated apply on a server that is not (or
// is no longer) a follower — the replica loop stops on it.
var ErrNotFollower = errors.New("server: not a follower")

// streamLSNBytes prefixes every WAL-stream frame payload: the record's
// LSN, big-endian. The stream must carry LSNs explicitly — the
// fault-injection harness drops and duplicates frames on purpose, and
// the follower detects both only because each frame names its position.
const streamLSNBytes = 8

// maxStreamWait caps the WAL stream's long-poll so a poll always
// returns well inside the request timeout.
const maxStreamWait = 20 * time.Second

// defaultStreamBytes bounds one WAL stream response's payload bytes.
const defaultStreamBytes = 4 << 20

// Role returns the server's current replication role.
func (s *Server) Role() Role { return Role(s.role.Load()) }

// SetRole sets the replication role without promotion bookkeeping — the
// startup knob (`ussd -follow` boots as RoleFollower). Promotion during
// failover must go through Promote instead.
func (s *Server) SetRole(r Role) { s.role.Store(int32(r)) }

// Ready reports readiness: recovery finished and, on a follower, the
// first catch-up with the primary completed.
func (s *Server) Ready() bool { return s.ready.Load() }

// SetReady flips the /readyz readiness gate (the replica loop raises it
// after first catch-up; `ussd -follow` boots not-ready).
func (s *Server) SetReady(v bool) { s.ready.Store(v) }

// Epoch returns the replication timeline epoch this server is on.
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// PromoteLSN returns the LSN at which this server's epoch began (0 on
// the initial timeline).
func (s *Server) PromoteLSN() uint64 { return s.promoteLSN.Load() }

// AdoptTimeline records that this server now follows the given timeline
// (a follower syncing onto a promoted primary's epoch), persisting it
// when durable.
func (s *Server) AdoptTimeline(tl store.Timeline) error {
	if d := s.dur; d != nil {
		if err := store.SaveTimeline(d.st.Dir(), tl); err != nil {
			return err
		}
	}
	s.epoch.Store(tl.Epoch)
	s.promoteLSN.Store(tl.PromoteLSN)
	return nil
}

// SetReplicationLag records the follower's distance behind the primary
// in LSNs (the replica loop calls it after every stream batch and
// heartbeat); lag 0 stamps the caught-up time the lag-seconds gauge
// measures from.
func (s *Server) SetReplicationLag(lagLSNs int64) {
	s.replLagLSNs.Store(lagLSNs)
	if lagLSNs == 0 {
		s.replCaughtUp.Store(time.Now().UnixNano())
	}
}

// replicationLag returns the current lag in LSNs and seconds. Lag in
// seconds is 0 while caught up, otherwise the time since the follower
// was last caught up (process start when it never was).
func (s *Server) replicationLag() (int64, float64) {
	lag := s.replLagLSNs.Load()
	if lag == 0 {
		return 0, 0
	}
	since := s.replCaughtUp.Load()
	if since == 0 {
		return lag, time.Since(s.met.start).Seconds()
	}
	return lag, time.Since(time.Unix(0, since)).Seconds()
}

// Promote turns a follower into the primary: the current log end is
// recorded as the new epoch's starting point and the timeline file is
// durably rewritten before the role flips, so a crash straddling
// promotion cannot lose the epoch. Records the old primary acknowledged
// but never replicated sit above the recorded PromoteLSN on its own log
// — it reconciles them by merging when it rejoins. Idempotent on a
// primary.
func (s *Server) Promote() error {
	d := s.dur
	if d != nil {
		// walMu serializes promotion against replicated applies: once the
		// role flips, ApplyReplicated refuses, so no old-epoch record can
		// land above the recorded PromoteLSN.
		d.walMu.Lock()
		defer d.walMu.Unlock()
	}
	if s.Role() == RolePrimary {
		return nil
	}
	tl := store.Timeline{Epoch: s.epoch.Load() + 1}
	if d != nil {
		tl.PromoteLSN = d.st.LastLSN()
		if err := store.SaveTimeline(d.st.Dir(), tl); err != nil {
			return err
		}
	}
	s.epoch.Store(tl.Epoch)
	s.promoteLSN.Store(tl.PromoteLSN)
	s.role.Store(int32(RolePrimary))
	s.ready.Store(true)
	s.SetReplicationLag(0)
	s.met.promotions.Add(1)
	return nil
}

// ApplyReplicated logs and applies one record pulled from the primary's
// WAL stream, pinned to the LSN the primary assigned. The record is
// appended to the local log first (byte-identical to the primary's) and
// then applied through the same code paths the primary's own workers
// use — applyBatch for ingest, applyPush for snapshots — so a promoted
// follower's state is bit-identical to a replay of the same records. A
// duplicate LSN is skipped silently (dup-frame faults, stream resumes);
// a gap is an error and the caller must re-request from its log end.
func (s *Server) ApplyReplicated(lsn uint64, payload []byte) error {
	d := s.dur
	if d == nil {
		return fmt.Errorf("server: replicated apply needs an attached store")
	}
	rec, err := store.DecodePayload(lsn, payload)
	if err != nil {
		return fmt.Errorf("server: replicated record %d: %w", lsn, err)
	}

	d.walMu.Lock()
	if s.Role() != RoleFollower {
		d.walMu.Unlock()
		return ErrNotFollower
	}
	applied, err := d.st.AppendReplicated(lsn, payload)
	if err != nil || !applied {
		d.walMu.Unlock()
		return err
	}
	s.met.replApplied.Add(1)
	switch rec.Type {
	case store.TypeCreate:
		e, err := s.reg.Create(configFromSpec(rec.Spec))
		if err == nil {
			e.appliedLSN.Store(lsn)
			e.appendedLSN.Store(lsn)
		}
		d.walMu.Unlock()
		if err != nil && !errors.Is(err, ErrExists) {
			return fmt.Errorf("server: replicated create %q: %w", rec.Name, err)
		}
		return nil
	case store.TypeDelete:
		s.reg.Delete(rec.Name)
		d.walMu.Unlock()
		return nil
	}

	e, ok := s.reg.Get(rec.Name)
	if !ok {
		// Same salvage contract as recovery: a record for a sketch the log
		// never created is logged locally (the stream is byte-faithful)
		// but not applied.
		d.walMu.Unlock()
		return nil
	}
	e.appendedLSN.Store(lsn)
	d.walMu.Unlock()

	switch rec.Type {
	case store.TypeIngest:
		b := &ingestBatch{items: rec.Items, ws: rec.Weights, ats: rec.Ats}
		if e.cfg.Kind == KindRollup && len(b.ats) < len(b.items) {
			b.ats = append(b.ats, make([]int64, len(b.items)-len(b.ats))...)
		}
		s.applyBatch(e, b, lsn)
		return nil
	case store.TypeSnapshot:
		red := uss.Reduction(rec.Reduction)
		switch red {
		case uss.Pairwise, uss.Pivotal, uss.MisraGries:
		default:
			return nil // undecodable reduction: logged, not applied (recovery parity)
		}
		pushed, err := uss.DecodeBins(rec.Blob)
		if err != nil {
			return nil // undecodable blob: logged, not applied (recovery parity)
		}
		res := s.applyPush(e, pushed, red, lsn)
		return res.err
	default:
		return nil
	}
}

// WALNextLSN returns the attached store's next LSN (0 when the server
// is not durable) — the position a follower's stream request resumes
// from.
func (s *Server) WALNextLSN() uint64 {
	if d := s.dur; d != nil {
		return d.st.NextLSN()
	}
	return 0
}

// NoteReconnect counts one replication-stream reconnect (replica loop).
func (s *Server) NoteReconnect() { s.met.replReconnects.Add(1) }

// NoteResync counts one full resync from a checkpoint bundle (replica
// loop).
func (s *Server) NoteResync() { s.met.replResyncs.Add(1) }

// NoteMergedTail counts diverged-tail records merged back into the new
// primary during rejoin reconciliation (replica loop).
func (s *Server) NoteMergedTail(n int64) { s.met.replMergedTails.Add(n) }

// followerRejects writes a 503 and reports true when this server is a
// follower — client mutations must go to the primary (replicated
// applies bypass the HTTP mutation handlers entirely).
func (s *Server) followerRejects(w http.ResponseWriter) bool {
	if s.Role() != RoleFollower {
		return false
	}
	writeError(w, http.StatusServiceUnavailable,
		fmt.Errorf("this server is a replication follower; send writes to the primary"))
	return true
}

// ReplStatus is the GET /v1/replication/status response: everything a
// follower (or operator) needs to decide how to sync — role, timeline,
// log position and readiness.
type ReplStatus struct {
	// Role is "primary" or "follower".
	Role string `json:"role"`
	// Ready mirrors /readyz.
	Ready bool `json:"ready"`
	// Epoch and PromoteLSN identify the replication timeline.
	Epoch      uint64 `json:"epoch"`
	PromoteLSN uint64 `json:"promote_lsn"`
	// Durable reports whether a store is attached; the remaining fields
	// are meaningful only when it is.
	Durable bool `json:"durable"`
	// LastLSN and NextLSN are the log's current extent.
	LastLSN uint64 `json:"last_lsn"`
	NextLSN uint64 `json:"next_lsn"`
	// CheckpointGen is the newest committed checkpoint generation.
	CheckpointGen uint64 `json:"checkpoint_gen"`
	// LagLSNs and LagSeconds are the follower's replication lag.
	LagLSNs    int64   `json:"lag_lsns,omitempty"`
	LagSeconds float64 `json:"lag_seconds,omitempty"`
}

// replStatus assembles the current ReplStatus.
func (s *Server) replStatus() ReplStatus {
	st := ReplStatus{
		Role:       s.Role().String(),
		Ready:      s.Ready(),
		Epoch:      s.Epoch(),
		PromoteLSN: s.PromoteLSN(),
	}
	if d := s.dur; d != nil {
		st.Durable = true
		st.LastLSN = d.st.LastLSN()
		st.NextLSN = d.st.NextLSN()
	}
	if s.Role() == RoleFollower {
		st.LagLSNs, st.LagSeconds = s.replicationLag()
	}
	return st
}

func (s *Server) handleReplStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.replStatus())
}

func (s *Server) handleReplPromote(w http.ResponseWriter, _ *http.Request) {
	if err := s.Promote(); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, s.replStatus())
}

// handleReplCheckpoint streams the newest committed checkpoint as a
// transport bundle (manifest + state blobs, log-framed) — the follower
// catch-up baseline. 204 means no checkpoint exists yet and the
// follower streams the log from LSN 1 instead.
func (s *Server) handleReplCheckpoint(w http.ResponseWriter, _ *http.Request) {
	d := s.dur
	if d == nil {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("replication needs a durable server (-data-dir)"))
		return
	}
	bundle, gen, err := store.EncodeCheckpointBundle(d.st.Dir())
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("X-Uss-Checkpoint-Gen", strconv.FormatUint(gen, 10))
	if gen == 0 {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(bundle)))
	_, _ = w.Write(bundle)
}

// handleReplWAL serves the replication stream: record payloads from
// ?from= onward, each framed with the log's len|crc32 framing over an
// 8-byte big-endian LSN prefix plus the payload exactly as logged.
// ?wait_ms long-polls until a record at or above from exists. Responses
// carry the primary's position and timeline in X-Uss-* headers. 410
// means from was checkpoint-truncated away — fall back to the
// checkpoint bundle. The repl.drop-frame, repl.dup-frame and
// repl.delay-frame failpoints act here, per frame.
func (s *Server) handleReplWAL(w http.ResponseWriter, r *http.Request) {
	d := s.dur
	if d == nil {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("replication needs a durable server (-data-dir)"))
		return
	}
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil || from == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad from=%q (want a positive LSN)", q.Get("from")))
		return
	}
	next := d.st.NextLSN()
	if from > next {
		// The follower's log extends past ours: it is from a diverged
		// timeline (or talking to the wrong primary).
		writeError(w, http.StatusConflict,
			fmt.Errorf("from=%d is past this primary's next LSN %d; resync required", from, next))
		return
	}
	if waitMS, _ := strconv.Atoi(q.Get("wait_ms")); waitMS > 0 && d.st.LastLSN() < from {
		wait := time.Duration(waitMS) * time.Millisecond
		if wait > maxStreamWait {
			wait = maxStreamWait
		}
		ctx, cancel := context.WithTimeout(r.Context(), wait)
		d.st.WaitForLSN(ctx, from)
		cancel()
	}

	budget := int64(defaultStreamBytes)
	if mb, _ := strconv.ParseInt(q.Get("max_bytes"), 10, 64); mb > 0 {
		budget = mb
	}
	// Read the log position before scanning: every record below it was
	// fully written before this point, so a scan that comes up short
	// below scanNext proves truncation, not a mid-append race.
	scanNext := d.st.NextLSN()
	var body []byte
	var frame []byte
	count, first, last := 0, uint64(0), uint64(0)
	oldest, err := store.StreamPayloads(d.st.Dir(), from, budget, func(lsn uint64, payload []byte) error {
		// count/first track what the scan found on disk — the 410 decision
		// below must not be confused by frames injection then drops.
		if count == 0 {
			first = lsn
		}
		count++
		last = lsn
		if faultinject.Hit("repl.drop-frame") {
			return nil // dropped on the floor: the follower sees the gap and re-requests
		}
		faultinject.Sleep("repl.delay-frame", 30*time.Millisecond)
		frame = binary.BigEndian.AppendUint64(frame[:0], lsn)
		frame = append(frame, payload...)
		body = store.AppendFramed(body, frame)
		if faultinject.Hit("repl.dup-frame") {
			body = store.AppendFramed(body, frame)
		}
		return nil
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if from < scanNext && (count == 0 || first > from) {
		// Nothing on disk at from even though the log extends past it:
		// those records were truncated by a checkpoint. The stream cannot
		// serve them, catch up from the checkpoint bundle instead.
		writeError(w, http.StatusGone,
			fmt.Errorf("LSN %d was checkpoint-truncated (oldest on disk is %d); catch up from the checkpoint", from, oldest))
		return
	}
	w.Header().Set("X-Uss-First-Lsn", strconv.FormatUint(first, 10))
	w.Header().Set("X-Uss-Count", strconv.Itoa(count))
	w.Header().Set("X-Uss-Last-Lsn", strconv.FormatUint(d.st.LastLSN(), 10))
	w.Header().Set("X-Uss-Stream-Last", strconv.FormatUint(last, 10))
	w.Header().Set("X-Uss-Epoch", strconv.FormatUint(s.Epoch(), 10))
	w.Header().Set("X-Uss-Promote-Lsn", strconv.FormatUint(s.PromoteLSN(), 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	_, _ = w.Write(body)
}

// CutStreamFrame parses one WAL-stream frame off the front of b: the
// frame's LSN, its record payload (aliasing b) and the remainder. A
// clean empty b returns lsn 0 with no error.
func CutStreamFrame(b []byte) (lsn uint64, payload, rest []byte, err error) {
	inner, rest, err := store.CutFrame(b)
	if err != nil || inner == nil {
		return 0, nil, rest, err
	}
	if len(inner) <= streamLSNBytes {
		return 0, nil, nil, fmt.Errorf("server: stream frame too short (%d bytes)", len(inner))
	}
	return binary.BigEndian.Uint64(inner), inner[streamLSNBytes:], rest, nil
}

// handleReadyz is the readiness probe: 200 once recovery (and, on a
// follower, first catch-up) completed, 503 before. Followers include
// their replication lag. Liveness stays on /healthz, which never gates
// on replication state.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	body := map[string]any{
		"ready":    s.Ready(),
		"role":     s.Role().String(),
		"epoch":    s.Epoch(),
		"shedding": s.adm.shedding(),
	}
	if d := s.dur; d != nil {
		pr := d.st.Pressure()
		body["pressure"] = store.PressureString(pr)
		body["read_only"] = pr == store.DiskHard
	}
	if s.Role() == RoleFollower {
		lagLSNs, lagSec := s.replicationLag()
		body["lag_lsns"] = lagLSNs
		body["lag_seconds"] = lagSec
	}
	code := http.StatusOK
	if !s.Ready() {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}
