package server

import (
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// metrics holds the server's counters. Everything is an atomic so the hot
// paths (ingest workers, query handlers) never share a lock with the
// scrape endpoint, and the hottest counters — touched on every row, batch,
// query, and 2xx response — are striped across cache lines (stripedInt64)
// so parallel workers don't serialize on one shared line either.
type metrics struct {
	start time.Time

	requests2xx stripedInt64
	requests4xx atomic.Int64
	requests5xx atomic.Int64

	rowsIngested   stripedInt64 // rows applied to sketches
	batchesQueued  stripedInt64 // ingest batches accepted (sync + async)
	queueDepth     atomic.Int64 // batches currently waiting for a worker
	snapshotsIn    atomic.Int64 // push requests merged
	snapshotsOut   atomic.Int64 // pull responses served
	queriesServed  stripedInt64 // query/topk/estimate/sum/range requests
	ingestRejected atomic.Int64 // ingest requests refused (parse, size, kind)

	checkpoints      atomic.Int64 // durable checkpoints committed
	checkpointErrors atomic.Int64 // background checkpoint failures

	shed429      atomic.Int64 // batches shed by the per-sketch token bucket
	shed503      atomic.Int64 // bodies shed by the in-flight-bytes budget
	demotions    atomic.Int64 // sketches demoted to cold blobs
	revivals     atomic.Int64 // cold sketches revived on access
	reviveErrors atomic.Int64 // cold blobs that failed to restore

	promotions      atomic.Int64 // follower→primary promotions
	replApplied     atomic.Int64 // records applied from the replication stream
	replReconnects  atomic.Int64 // replication stream reconnects
	replResyncs     atomic.Int64 // full resyncs (checkpoint catch-up restarts)
	replMergedTails atomic.Int64 // diverged-tail records merged on rejoin
}

// boolGauge renders a bool as a 0/1 gauge value.
func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}

// countStatus buckets one response code.
func (m *metrics) countStatus(code int) {
	switch {
	case code >= 500:
		m.requests5xx.Add(1)
	case code >= 400:
		m.requests4xx.Add(1)
	default:
		m.requests2xx.Add(1)
	}
}

// statusRecorder captures the response code for the metrics middleware.
// It forwards the optional ResponseWriter interfaces it would otherwise
// swallow: Flush for the replication WAL long-poll and other streaming
// responses, Unwrap for http.ResponseController callers.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so streaming endpoints keep
// flushing through the metrics middleware.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController,
// which walks Unwrap chains to find Flusher/Hijacker/deadline support.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// instrument wraps h so every response is counted by status class.
func (m *metrics) instrument(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(rec, req)
		m.countStatus(rec.code)
	})
}

// handleMetrics serves the counters in the Prometheus text exposition
// format, plus per-sketch row counts from the registry.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := s.met
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	// fam opens a metric family: HELP then TYPE, each exactly once, both
	// before the family's first sample — the exposition-format contract
	// the strict-checker test pins.
	fam := func(name, typ, help string) {
		p("# HELP %s %s\n", name, help)
		p("# TYPE %s %s\n", name, typ)
	}
	fam("ussd_uptime_seconds", "gauge", "Seconds since the server started.")
	p("ussd_uptime_seconds %.3f\n", time.Since(m.start).Seconds())
	fam("ussd_http_requests_total", "counter", "HTTP responses by status class.")
	p("ussd_http_requests_total{class=\"2xx\"} %d\n", m.requests2xx.Load())
	p("ussd_http_requests_total{class=\"4xx\"} %d\n", m.requests4xx.Load())
	p("ussd_http_requests_total{class=\"5xx\"} %d\n", m.requests5xx.Load())
	fam("ussd_rows_ingested_total", "counter", "Rows applied to sketches.")
	p("ussd_rows_ingested_total %d\n", m.rowsIngested.Load())
	fam("ussd_ingest_batches_total", "counter", "Ingest batches accepted (sync and async).")
	p("ussd_ingest_batches_total %d\n", m.batchesQueued.Load())
	fam("ussd_ingest_rejected_total", "counter", "Ingest requests refused (parse, size, kind).")
	p("ussd_ingest_rejected_total %d\n", m.ingestRejected.Load())
	fam("ussd_ingest_queue_depth", "gauge", "Batches waiting for an ingest worker.")
	p("ussd_ingest_queue_depth %d\n", m.queueDepth.Load())
	fam("ussd_snapshots_pushed_total", "counter", "Snapshot push requests merged in.")
	p("ussd_snapshots_pushed_total %d\n", m.snapshotsIn.Load())
	fam("ussd_snapshots_pulled_total", "counter", "Snapshot pull responses served.")
	p("ussd_snapshots_pulled_total %d\n", m.snapshotsOut.Load())
	fam("ussd_queries_total", "counter", "Query/topk/estimate/sum/range requests served.")
	p("ussd_queries_total %d\n", m.queriesServed.Load())
	fam("ussd_admission_shed_total", "counter", "Requests shed by admission control, by response code.")
	p("ussd_admission_shed_total{code=\"429\"} %d\n", m.shed429.Load())
	p("ussd_admission_shed_total{code=\"503\"} %d\n", m.shed503.Load())
	fam("ussd_inflight_bytes", "gauge", "Mutation-body bytes admitted but not yet applied.")
	p("ussd_inflight_bytes %d\n", s.adm.inflight.Load())
	fam("ussd_shedding", "gauge", "1 while the in-flight-bytes budget is shedding mutations.")
	p("ussd_shedding %d\n", boolGauge(s.adm.shedding()))
	fam("ussd_sketch_demotions_total", "counter", "Sketches demoted to cold on-disk blobs.")
	p("ussd_sketch_demotions_total %d\n", m.demotions.Load())
	fam("ussd_sketch_revivals_total", "counter", "Cold sketches revived on access.")
	p("ussd_sketch_revivals_total %d\n", m.revivals.Load())
	fam("ussd_sketch_revive_errors_total", "counter", "Cold blobs that failed to restore.")
	p("ussd_sketch_revive_errors_total %d\n", m.reviveErrors.Load())

	if d := s.dur; d != nil {
		sm := d.st.Metrics()
		fam("ussd_wal_appends_total", "counter", "Records appended to the WAL.")
		p("ussd_wal_appends_total %d\n", sm.Appends.Load())
		fam("ussd_wal_bytes_total", "counter", "Framed bytes written to the WAL.")
		p("ussd_wal_bytes_total %d\n", sm.Bytes.Load())
		fam("ussd_wal_fsyncs_total", "counter", "WAL fsync calls.")
		p("ussd_wal_fsyncs_total %d\n", sm.Syncs.Load())
		fam("ussd_wal_rotations_total", "counter", "WAL segment rotations.")
		p("ussd_wal_rotations_total %d\n", sm.Rotations.Load())
		fam("ussd_wal_last_lsn", "gauge", "Highest LSN appended to the WAL.")
		p("ussd_wal_last_lsn %d\n", d.st.LastLSN())
		fam("ussd_checkpoints_total", "counter", "Durable checkpoints committed.")
		p("ussd_checkpoints_total %d\n", m.checkpoints.Load())
		fam("ussd_checkpoint_errors_total", "counter", "Background checkpoint failures.")
		p("ussd_checkpoint_errors_total %d\n", m.checkpointErrors.Load())
		fam("ussd_wal_sync_errors_total", "counter", "WAL fsync failures.")
		p("ussd_wal_sync_errors_total %d\n", sm.SyncErrors.Load())
		fam("ussd_disk_pressure", "gauge", "Disk pressure level (0 ok, 1 soft, 2 hard/read-only).")
		p("ussd_disk_pressure %d\n", d.st.Pressure())
		fam("ussd_disk_soft_trips_total", "counter", "Transitions into soft disk pressure.")
		p("ussd_disk_soft_trips_total %d\n", sm.DiskSoftTrips.Load())
		fam("ussd_disk_hard_trips_total", "counter", "Transitions into hard (read-only) disk pressure.")
		p("ussd_disk_hard_trips_total %d\n", sm.DiskHardTrips.Load())
		fam("ussd_readonly_rejects_total", "counter", "Mutations rejected while the store was read-only.")
		p("ussd_readonly_rejects_total %d\n", sm.ReadOnlyRejects.Load())
	}

	fam("ussd_replication_role", "gauge", "Replication role of this node (label carries the role).")
	p("ussd_replication_role{role=%q} 1\n", s.Role())
	fam("ussd_ready", "gauge", "1 once recovery/catch-up is done and the node serves reads.")
	p("ussd_ready %d\n", boolGauge(s.Ready()))
	fam("ussd_replication_epoch", "gauge", "Timeline epoch this node's log belongs to.")
	p("ussd_replication_epoch %d\n", s.Epoch())
	fam("ussd_promotions_total", "counter", "Follower-to-primary promotions.")
	p("ussd_promotions_total %d\n", m.promotions.Load())
	fam("ussd_replication_merged_tail_total", "counter", "Diverged-tail records merged on rejoin.")
	p("ussd_replication_merged_tail_total %d\n", m.replMergedTails.Load())
	if s.Role() == RoleFollower {
		lagLSNs, lagSec := s.replicationLag()
		fam("ussd_replication_lag_lsns", "gauge", "LSNs behind the primary.")
		p("ussd_replication_lag_lsns %d\n", lagLSNs)
		fam("ussd_replication_lag_seconds", "gauge", "Seconds since this follower was last caught up.")
		p("ussd_replication_lag_seconds %.3f\n", lagSec)
		fam("ussd_replication_applied_total", "counter", "Records applied from the replication stream.")
		p("ussd_replication_applied_total %d\n", m.replApplied.Load())
		fam("ussd_replication_reconnects_total", "counter", "Replication stream reconnects.")
		p("ussd_replication_reconnects_total %d\n", m.replReconnects.Load())
		fam("ussd_replication_resyncs_total", "counter", "Full resyncs (checkpoint catch-up restarts).")
		p("ussd_replication_resyncs_total %d\n", m.replResyncs.Load())
	}

	entries := s.reg.List()
	fam("ussd_sketches", "gauge", "Registered sketches.")
	p("ussd_sketches %d\n", len(entries))
	fam("ussd_sketch_rows", "counter", "Rows ingested per sketch.")
	for _, e := range entries {
		p("ussd_sketch_rows{name=%q,kind=%q} %d\n", e.cfg.Name, e.cfg.Kind, e.rows.Load())
	}

	s.extraMu.Lock()
	extras := make([]func(io.Writer), len(s.extraMetrics))
	copy(extras, s.extraMetrics)
	s.extraMu.Unlock()
	for _, f := range extras {
		f(w)
	}
}

// RegisterMetrics adds an emitter the /metrics endpoint appends after
// the server's own series — how embedders (the cluster agent, the bench
// harness) export their counters through the node's scrape endpoint.
func (s *Server) RegisterMetrics(f func(w io.Writer)) {
	s.extraMu.Lock()
	s.extraMetrics = append(s.extraMetrics, f)
	s.extraMu.Unlock()
}

// handleHealthz reports liveness. It never touches sketch state, so a
// wedged merge cannot take the probe down with it.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.met.start).Seconds(),
	})
}
