package server

import (
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// metrics holds the server's counters. Everything is an atomic so the hot
// paths (ingest workers, query handlers) never share a lock with the
// scrape endpoint, and the hottest counters — touched on every row, batch,
// query, and 2xx response — are striped across cache lines (stripedInt64)
// so parallel workers don't serialize on one shared line either.
type metrics struct {
	start time.Time

	requests2xx stripedInt64
	requests4xx atomic.Int64
	requests5xx atomic.Int64

	rowsIngested   stripedInt64 // rows applied to sketches
	batchesQueued  stripedInt64 // ingest batches accepted (sync + async)
	queueDepth     atomic.Int64 // batches currently waiting for a worker
	snapshotsIn    atomic.Int64 // push requests merged
	snapshotsOut   atomic.Int64 // pull responses served
	queriesServed  stripedInt64 // query/topk/estimate/sum/range requests
	ingestRejected atomic.Int64 // ingest requests refused (parse, size, kind)

	checkpoints      atomic.Int64 // durable checkpoints committed
	checkpointErrors atomic.Int64 // background checkpoint failures

	shed429      atomic.Int64 // batches shed by the per-sketch token bucket
	shed503      atomic.Int64 // bodies shed by the in-flight-bytes budget
	demotions    atomic.Int64 // sketches demoted to cold blobs
	revivals     atomic.Int64 // cold sketches revived on access
	reviveErrors atomic.Int64 // cold blobs that failed to restore

	promotions      atomic.Int64 // follower→primary promotions
	replApplied     atomic.Int64 // records applied from the replication stream
	replReconnects  atomic.Int64 // replication stream reconnects
	replResyncs     atomic.Int64 // full resyncs (checkpoint catch-up restarts)
	replMergedTails atomic.Int64 // diverged-tail records merged on rejoin
}

// boolGauge renders a bool as a 0/1 gauge value.
func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}

// countStatus buckets one response code.
func (m *metrics) countStatus(code int) {
	switch {
	case code >= 500:
		m.requests5xx.Add(1)
	case code >= 400:
		m.requests4xx.Add(1)
	default:
		m.requests2xx.Add(1)
	}
}

// statusRecorder captures the response code for the metrics middleware.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps h so every response is counted by status class.
func (m *metrics) instrument(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(rec, req)
		m.countStatus(rec.code)
	})
}

// handleMetrics serves the counters in the Prometheus text exposition
// format, plus per-sketch row counts from the registry.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := s.met
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("# TYPE ussd_uptime_seconds gauge\n")
	p("ussd_uptime_seconds %.3f\n", time.Since(m.start).Seconds())
	p("# TYPE ussd_http_requests_total counter\n")
	p("ussd_http_requests_total{class=\"2xx\"} %d\n", m.requests2xx.Load())
	p("ussd_http_requests_total{class=\"4xx\"} %d\n", m.requests4xx.Load())
	p("ussd_http_requests_total{class=\"5xx\"} %d\n", m.requests5xx.Load())
	p("# TYPE ussd_rows_ingested_total counter\n")
	p("ussd_rows_ingested_total %d\n", m.rowsIngested.Load())
	p("# TYPE ussd_ingest_batches_total counter\n")
	p("ussd_ingest_batches_total %d\n", m.batchesQueued.Load())
	p("# TYPE ussd_ingest_rejected_total counter\n")
	p("ussd_ingest_rejected_total %d\n", m.ingestRejected.Load())
	p("# TYPE ussd_ingest_queue_depth gauge\n")
	p("ussd_ingest_queue_depth %d\n", m.queueDepth.Load())
	p("# TYPE ussd_snapshots_pushed_total counter\n")
	p("ussd_snapshots_pushed_total %d\n", m.snapshotsIn.Load())
	p("# TYPE ussd_snapshots_pulled_total counter\n")
	p("ussd_snapshots_pulled_total %d\n", m.snapshotsOut.Load())
	p("# TYPE ussd_queries_total counter\n")
	p("ussd_queries_total %d\n", m.queriesServed.Load())
	p("# TYPE ussd_admission_shed_total counter\n")
	p("ussd_admission_shed_total{code=\"429\"} %d\n", m.shed429.Load())
	p("ussd_admission_shed_total{code=\"503\"} %d\n", m.shed503.Load())
	p("# TYPE ussd_inflight_bytes gauge\n")
	p("ussd_inflight_bytes %d\n", s.adm.inflight.Load())
	p("# TYPE ussd_shedding gauge\n")
	p("ussd_shedding %d\n", boolGauge(s.adm.shedding()))
	p("# TYPE ussd_sketch_demotions_total counter\n")
	p("ussd_sketch_demotions_total %d\n", m.demotions.Load())
	p("# TYPE ussd_sketch_revivals_total counter\n")
	p("ussd_sketch_revivals_total %d\n", m.revivals.Load())
	p("# TYPE ussd_sketch_revive_errors_total counter\n")
	p("ussd_sketch_revive_errors_total %d\n", m.reviveErrors.Load())

	if d := s.dur; d != nil {
		sm := d.st.Metrics()
		p("# TYPE ussd_wal_appends_total counter\n")
		p("ussd_wal_appends_total %d\n", sm.Appends.Load())
		p("# TYPE ussd_wal_bytes_total counter\n")
		p("ussd_wal_bytes_total %d\n", sm.Bytes.Load())
		p("# TYPE ussd_wal_fsyncs_total counter\n")
		p("ussd_wal_fsyncs_total %d\n", sm.Syncs.Load())
		p("# TYPE ussd_wal_rotations_total counter\n")
		p("ussd_wal_rotations_total %d\n", sm.Rotations.Load())
		p("# TYPE ussd_wal_last_lsn gauge\n")
		p("ussd_wal_last_lsn %d\n", d.st.LastLSN())
		p("# TYPE ussd_checkpoints_total counter\n")
		p("ussd_checkpoints_total %d\n", m.checkpoints.Load())
		p("# TYPE ussd_checkpoint_errors_total counter\n")
		p("ussd_checkpoint_errors_total %d\n", m.checkpointErrors.Load())
		p("# TYPE ussd_wal_sync_errors_total counter\n")
		p("ussd_wal_sync_errors_total %d\n", sm.SyncErrors.Load())
		p("# TYPE ussd_disk_pressure gauge\n")
		p("ussd_disk_pressure %d\n", d.st.Pressure())
		p("# TYPE ussd_disk_soft_trips_total counter\n")
		p("ussd_disk_soft_trips_total %d\n", sm.DiskSoftTrips.Load())
		p("# TYPE ussd_disk_hard_trips_total counter\n")
		p("ussd_disk_hard_trips_total %d\n", sm.DiskHardTrips.Load())
		p("# TYPE ussd_readonly_rejects_total counter\n")
		p("ussd_readonly_rejects_total %d\n", sm.ReadOnlyRejects.Load())
	}

	p("# TYPE ussd_replication_role gauge\n")
	p("ussd_replication_role{role=%q} 1\n", s.Role())
	p("# TYPE ussd_ready gauge\n")
	p("ussd_ready %d\n", boolGauge(s.Ready()))
	p("# TYPE ussd_replication_epoch gauge\n")
	p("ussd_replication_epoch %d\n", s.Epoch())
	p("# TYPE ussd_promotions_total counter\n")
	p("ussd_promotions_total %d\n", m.promotions.Load())
	p("# TYPE ussd_replication_merged_tail_total counter\n")
	p("ussd_replication_merged_tail_total %d\n", m.replMergedTails.Load())
	if s.Role() == RoleFollower {
		lagLSNs, lagSec := s.replicationLag()
		p("# TYPE ussd_replication_lag_lsns gauge\n")
		p("ussd_replication_lag_lsns %d\n", lagLSNs)
		p("# TYPE ussd_replication_lag_seconds gauge\n")
		p("ussd_replication_lag_seconds %.3f\n", lagSec)
		p("# TYPE ussd_replication_applied_total counter\n")
		p("ussd_replication_applied_total %d\n", m.replApplied.Load())
		p("# TYPE ussd_replication_reconnects_total counter\n")
		p("ussd_replication_reconnects_total %d\n", m.replReconnects.Load())
		p("# TYPE ussd_replication_resyncs_total counter\n")
		p("ussd_replication_resyncs_total %d\n", m.replResyncs.Load())
	}

	entries := s.reg.List()
	p("# TYPE ussd_sketches gauge\n")
	p("ussd_sketches %d\n", len(entries))
	p("# TYPE ussd_sketch_rows counter\n")
	for _, e := range entries {
		p("ussd_sketch_rows{name=%q,kind=%q} %d\n", e.cfg.Name, e.cfg.Kind, e.rows.Load())
	}

	s.extraMu.Lock()
	extras := make([]func(io.Writer), len(s.extraMetrics))
	copy(extras, s.extraMetrics)
	s.extraMu.Unlock()
	for _, f := range extras {
		f(w)
	}
}

// RegisterMetrics adds an emitter the /metrics endpoint appends after
// the server's own series — how embedders (the cluster agent, the bench
// harness) export their counters through the node's scrape endpoint.
func (s *Server) RegisterMetrics(f func(w io.Writer)) {
	s.extraMu.Lock()
	s.extraMetrics = append(s.extraMetrics, f)
	s.extraMu.Unlock()
}

// handleHealthz reports liveness. It never touches sketch state, so a
// wedged merge cannot take the probe down with it.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.met.start).Seconds(),
	})
}
