package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	uss "repro"
)

// ErrExists reports a create for a name the registry already holds —
// including names restored by durable recovery. Detect it with
// errors.Is.
var ErrExists = errors.New("sketch already exists")

// ErrNotFound reports a lookup for a name the registry does not hold.
// Every handler maps it to 404 through statusFor; detect it with
// errors.Is.
var ErrNotFound = errors.New("no such sketch")

// Kind names a sketch flavour the registry can host.
type Kind string

// The four hosted kinds. Unit and Weighted are single sketches behind the
// entry mutex; Sharded is internally synchronized and takes concurrent
// ingest without the entry lock; Rollup is windowed and adds the
// range-query endpoints.
const (
	KindUnit     Kind = "unit"
	KindWeighted Kind = "weighted"
	KindSharded  Kind = "sharded"
	KindRollup   Kind = "rollup"
)

// SketchConfig declares one named sketch. It is the create-request body
// and is echoed back by the list and info endpoints.
type SketchConfig struct {
	// Name is the registry key, non-empty, unique.
	Name string `json:"name"`
	// Kind selects the sketch flavour; defaults to "sharded".
	Kind Kind `json:"kind"`
	// Bins is the bin budget: total for unit/weighted, per shard for
	// sharded, per window for rollup.
	Bins int `json:"bins"`
	// Shards is the shard count for KindSharded (default 8, ignored
	// otherwise).
	Shards int `json:"shards,omitempty"`
	// Seed fixes the sketch randomness for reproducible tests (0 = draw a
	// random seed; always use 0 or distinct seeds in production).
	Seed int64 `json:"seed,omitempty"`
	// WindowLength is the rollup window duration in the caller's time
	// unit (required for KindRollup, ignored otherwise).
	WindowLength int64 `json:"window_length,omitempty"`
	// Retain keeps only the most recent rollup windows (0 = keep all).
	Retain int `json:"retain,omitempty"`
}

// validate normalizes defaults in place and rejects unusable configs.
func (c *SketchConfig) validate() error {
	if c.Name == "" {
		return fmt.Errorf("sketch name must be non-empty")
	}
	if c.Kind == "" {
		c.Kind = KindSharded
	}
	if c.Bins <= 0 {
		return fmt.Errorf("sketch %q: bins must be positive, got %d", c.Name, c.Bins)
	}
	switch c.Kind {
	case KindUnit, KindWeighted:
	case KindSharded:
		if c.Shards == 0 {
			c.Shards = 8
		}
		if c.Shards < 0 {
			return fmt.Errorf("sketch %q: shards must be positive, got %d", c.Name, c.Shards)
		}
	case KindRollup:
		if c.WindowLength <= 0 {
			return fmt.Errorf("sketch %q: rollup needs a positive window_length", c.Name)
		}
		if c.Retain < 0 {
			return fmt.Errorf("sketch %q: retain must be non-negative, got %d", c.Name, c.Retain)
		}
	default:
		return fmt.Errorf("sketch %q: unknown kind %q (want unit, weighted, sharded or rollup)", c.Name, c.Kind)
	}
	return nil
}

// options renders the config's seed as construction options.
func (c *SketchConfig) options() []uss.Option {
	if c.Seed != 0 {
		return []uss.Option{uss.WithSeed(c.Seed)}
	}
	return nil
}

// entry is one hosted sketch. Exactly one of the four sketch fields is
// non-nil, matching cfg.Kind.
//
// Locking: mu guards the sketch state of unit, weighted and rollup
// entries (single-writer types), the pull encode buffer, and the query
// engine + prepared-query cache of every kind. Sharded entries take
// ingest and cached reads (TopK) without mu — the ShardedSketch is
// internally synchronized and its snapshot cache is lock-free — but their
// query engine still lives behind mu because engines are single-goroutine
// owners of their buffers. Counters are atomics so the metrics endpoint
// never contends with ingest.
type entry struct {
	cfg SketchConfig

	mu       sync.Mutex
	unit     *uss.Sketch
	weighted *uss.WeightedSketch
	sharded  *uss.ShardedSketch
	rollup   *uss.Rollup

	// qe + prep are the PR 2 cached read path: one engine per entry, one
	// prepared query per distinct spec, revalidated against sketch
	// versions internally so ingest between queries only costs the delta.
	// Both are dropped when push replaces the weighted sketch.
	qe   *uss.QueryEngine
	prep map[string]*uss.PreparedQuery

	// enc is the pull endpoint's reused snapshot encode buffer.
	enc []byte

	rows    atomic.Int64 // rows applied (ingest)
	pushes  atomic.Int64 // snapshots merged in
	dropped atomic.Int64 // rollup rows past the retention horizon

	// appliedLSN is the durable-mode watermark: the highest WAL record
	// applied to this entry's sketch. Because a durable server routes an
	// entry's mutations to one worker in LSN order, the sketch state
	// holds exactly the records at or below it — the invariant
	// checkpoints and recovery are built on. Written under mu; read
	// atomically by the checkpointer (also under mu) and metrics.
	appliedLSN atomic.Uint64
	// appendedLSN is the highest WAL record appended for this entry
	// (written under the durability walMu at append time). When it
	// equals appliedLSN the entry has nothing in flight, which lets a
	// checkpoint advance the entry's replay gate to the checkpoint's
	// base LSN — otherwise an idle sketch would pin the truncation
	// cutoff at its last write forever.
	appendedLSN atomic.Uint64

	// Per-sketch ingest token bucket (admission.go). Its own mutex: the
	// bucket is consulted before the batch is queued, never under e.mu.
	tbMu     sync.Mutex
	tbTokens float64
	tbLast   int64

	// Memory-watermark demotion state (admission.go). lastAccess is
	// stamped by ensureLive on every path that touches the sketch
	// pointers; cold flips under e.mu (the atomic is the lock-free fast
	// check) and while it is set the sketch pointers are nil and the
	// entry's exact state lives in the blob at coldPath. coldSize and
	// coldTotal preserve the stats snapshot so list/info and anti-entropy
	// digests answer without reviving.
	lastAccess atomic.Int64
	cold       atomic.Bool
	coldPath   string
	coldSize   int
	coldTotal  float64
}

// newEntry constructs the sketch for a validated config.
func newEntry(cfg SketchConfig) (*entry, error) {
	e := &entry{cfg: cfg}
	e.lastAccess.Store(time.Now().UnixNano())
	switch cfg.Kind {
	case KindUnit:
		e.unit = uss.New(cfg.Bins, cfg.options()...)
	case KindWeighted:
		e.weighted = uss.NewWeighted(cfg.Bins, cfg.options()...)
	case KindSharded:
		e.sharded = uss.NewSharded(cfg.Shards, cfg.Bins, cfg.options()...)
	case KindRollup:
		r, err := uss.NewRollup(uss.RollupConfig{
			Bins:         cfg.Bins,
			WindowLength: cfg.WindowLength,
			Retain:       cfg.Retain,
			Seed:         cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("sketch %q: %w", cfg.Name, err)
		}
		e.rollup = r
	}
	return e, nil
}

// capacity returns the entry's total bin budget.
func (e *entry) capacity() int {
	switch e.cfg.Kind {
	case KindSharded:
		return e.cfg.Shards * e.cfg.Bins
	default:
		return e.cfg.Bins
	}
}

// Registry is the named-sketch table: a read-mostly map behind an RWMutex.
// Lookups on the hot ingest/query path take the read lock only long enough
// to fetch the entry pointer; all sketch work happens outside the registry
// lock, so creating or deleting one sketch never stalls traffic to others.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// Create validates cfg, builds the sketch and registers it. It fails if
// the name is taken.
func (r *Registry) Create(cfg SketchConfig) (*entry, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e, err := newEntry(cfg)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, taken := r.entries[cfg.Name]; taken {
		return nil, fmt.Errorf("sketch %q: %w", cfg.Name, ErrExists)
	}
	r.entries[cfg.Name] = e
	return e, nil
}

// adopt registers an already-built entry — the recovery path, which
// restores sketch state instead of constructing it fresh.
func (r *Registry) adopt(e *entry) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, taken := r.entries[e.cfg.Name]; taken {
		return fmt.Errorf("sketch %q: %w", e.cfg.Name, ErrExists)
	}
	r.entries[e.cfg.Name] = e
	return nil
}

// Get fetches an entry by name.
func (r *Registry) Get(name string) (*entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e, ok
}

// Delete unregisters a sketch. In-flight requests holding the entry
// pointer finish against the orphaned sketch; new lookups miss.
func (r *Registry) Delete(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; !ok {
		return false
	}
	delete(r.entries, name)
	return true
}

// List returns all entries sorted by name.
func (r *Registry) List() []*entry {
	r.mu.RLock()
	out := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].cfg.Name < out[j].cfg.Name })
	return out
}
