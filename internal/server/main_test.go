package server

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain gates the package on goroutine hygiene: ingest workers,
// checkpoint and pressure loops, and replication streams must all be
// reeled in by Shutdown, or the leak check dumps their stacks and fails
// the run.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
