package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/store"
)

// postText posts a newline-text ingest body and returns the response.
func postText(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestIngestTokenBucket429 drives a sketch past its configured rate:
// the first burst-sized batch is admitted, the immediate follow-up is
// shed with 429 and a positive Retry-After hint.
func TestIngestTokenBucket429(t *testing.T) {
	s := New(Config{IngestWorkers: 1, QueueDepth: 4, IngestRateRows: 5, IngestBurstRows: 10})
	ts := httptest.NewServer(s.Handler())
	defer shutdown(t, s, ts)
	create(t, ts, SketchConfig{Name: "x", Kind: KindUnit, Bins: 16, Seed: 1})

	body := strings.Repeat("a\n", 10)
	if resp := postText(t, ts.URL+"/v1/sketches/x/ingest?sync=1", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("burst-sized batch: status %d, want 200", resp.StatusCode)
	}
	resp := postText(t, ts.URL+"/v1/sketches/x/ingest?sync=1", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate batch: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("429 carried Retry-After %q, want a positive hint", ra)
	}
	if got := s.met.shed429.Load(); got != 1 {
		t.Fatalf("shed429 = %d, want 1", got)
	}
	// The refusal did not consume tokens: after the deficit refills the
	// same batch is admitted.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if resp := postText(t, ts.URL+"/v1/sketches/x/ingest?sync=1", body); resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("bucket never refilled")
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestInflightBudgetSheds503 bounds in-flight bytes so far below the
// request body that every mutation is shed with 503 + Retry-After,
// while queries keep answering.
func TestInflightBudgetSheds503(t *testing.T) {
	s := New(Config{IngestWorkers: 1, QueueDepth: 4, MaxInflightBytes: 8})
	ts := httptest.NewServer(s.Handler())
	defer shutdown(t, s, ts)
	create(t, ts, SketchConfig{Name: "x", Kind: KindUnit, Bins: 16, Seed: 1})

	resp := postText(t, ts.URL+"/v1/sketches/x/ingest", strings.Repeat("a\n", 50))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-budget body: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 shed lost its Retry-After hint")
	}
	if got := s.met.shed503.Load(); got != 1 {
		t.Fatalf("shed503 = %d, want 1", got)
	}
	if !s.adm.shedding() {
		t.Fatal("shedding() = false right after a shed")
	}
	if got := s.adm.inflight.Load(); got != 0 {
		t.Fatalf("inflight after shed = %d, want 0 (charge must roll back)", got)
	}
	// A body under the budget still flows.
	if resp := postText(t, ts.URL+"/v1/sketches/x/ingest?sync=1", "a\n"); resp.StatusCode != http.StatusOK {
		t.Fatalf("small body: status %d, want 200", resp.StatusCode)
	}
	// Reads are never admission-gated.
	if items := topk(t, ts, "x", 5); len(items) == 0 {
		t.Fatal("topk empty while shedding mutations")
	}
}

// TestReadOnlyMutationsCarryRetryAfter arms disk.enospc on a durable
// server: every mutation class answers 503 with Retry-After while reads
// stay 200, and the store heals once space returns.
func TestReadOnlyMutationsCarryRetryAfter(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	dir := t.TempDir()
	rebuilt, err := store.Rebuild(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(store.Options{Dir: dir, Sync: store.SyncNever, DiskCheckEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{IngestWorkers: 1, QueueDepth: 4})
	if err := s.AttachStore(st, rebuilt, 0); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer shutdown(t, s, ts)
	create(t, ts, SketchConfig{Name: "x", Kind: KindUnit, Bins: 16, Seed: 1})
	if resp := postText(t, ts.URL+"/v1/sketches/x/ingest?sync=1", "a\nb\n"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy ingest: status %d", resp.StatusCode)
	}

	if err := faultinject.Enable("disk.enospc"); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		what string
		do   func() *http.Response
	}{
		{"ingest", func() *http.Response {
			return postText(t, ts.URL+"/v1/sketches/x/ingest?sync=1", "c\n")
		}},
		{"create", func() *http.Response {
			return doJSON(t, "POST", ts.URL+"/v1/sketches", SketchConfig{Name: "y", Kind: KindUnit, Bins: 8}, nil)
		}},
		{"delete", func() *http.Response {
			return doJSON(t, "DELETE", ts.URL+"/v1/sketches/x", nil, nil)
		}},
	} {
		resp := tc.do()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s while read-only: status %d, want 503", tc.what, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s while read-only lost its Retry-After hint", tc.what)
		}
	}
	// Reads of the surviving state stay exact.
	if items := topk(t, ts, "x", 5); len(items) != 2 {
		t.Fatalf("topk while read-only = %d items, want 2", len(items))
	}
	var ready map[string]any
	doJSON(t, "GET", ts.URL+"/readyz", nil, &ready)
	if ready["pressure"] != "read_only" || ready["read_only"] != true {
		t.Fatalf("readyz under enospc = %+v, want pressure=read_only", ready)
	}

	faultinject.Reset()
	if resp := postText(t, ts.URL+"/v1/sketches/x/ingest?sync=1", "c\n"); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest after space returned: status %d", resp.StatusCode)
	}
}

// TestDemoteRevive pushes a durable server over its memory watermark,
// demotes an idle sketch by hand (the pressure loop's path), and checks
// that list/info answers from the cold stats, checkpoints stay correct,
// and the next read revives the exact state.
func TestDemoteRevive(t *testing.T) {
	dir := t.TempDir()
	rebuilt, err := store.Rebuild(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(store.Options{Dir: dir, Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{IngestWorkers: 1, QueueDepth: 4, MemorySoftBytes: 1, ColdAfter: time.Nanosecond})
	if err := s.AttachStore(st, rebuilt, 0); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer shutdown(t, s, ts)

	create(t, ts, SketchConfig{Name: "x", Kind: KindWeighted, Bins: 32, Seed: 7})
	var rows strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&rows, "item-%d\t%d\n", i%11, 1+i%3)
	}
	if resp := postText(t, ts.URL+"/v1/sketches/x/ingest?sync=1", rows.String()); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}
	before := topk(t, ts, "x", 11)
	infoBefore := doInfo(t, ts, "x")

	time.Sleep(time.Millisecond) // outlive ColdAfter
	s.maybeDemote()
	e, _ := s.reg.Get("x")
	if !e.cold.Load() {
		t.Fatal("maybeDemote left the idle sketch live over the watermark")
	}
	if _, err := os.Stat(e.coldPath); err != nil {
		t.Fatalf("cold blob missing: %v", err)
	}
	if got := s.met.demotions.Load(); got != 1 {
		t.Fatalf("demotions = %d, want 1", got)
	}

	// info answers from the cold stats without reviving.
	infoCold := doInfo(t, ts, "x")
	if e.cold.Load() == false {
		t.Fatal("info revived the sketch")
	}
	if infoCold.Size != infoBefore.Size || infoCold.Total != infoBefore.Total {
		t.Fatalf("cold info = (size %d, total %g), want (%d, %g)",
			infoCold.Size, infoCold.Total, infoBefore.Size, infoBefore.Total)
	}
	// Checkpoints read the cold blob directly.
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint with a cold sketch: %v", err)
	}

	// The next data read revives the exact state.
	after := topk(t, ts, "x", 11)
	if e.cold.Load() {
		t.Fatal("topk did not revive the sketch")
	}
	if got := s.met.revivals.Load(); got != 1 {
		t.Fatalf("revivals = %d, want 1", got)
	}
	if len(after) != len(before) {
		t.Fatalf("revived topk has %d items, want %d", len(after), len(before))
	}
	for i := range before {
		if after[i] != before[i] {
			t.Fatalf("revived topk[%d] = %+v, want %+v", i, after[i], before[i])
		}
	}
	if _, err := os.Stat(e.coldPath); !os.IsNotExist(err) {
		t.Fatalf("cold blob not removed after revival: %v", err)
	}

	// Writes keep landing on the revived sketch.
	if resp := postText(t, ts.URL+"/v1/sketches/x/ingest?sync=1", "item-0\t1\n"); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest after revival: status %d", resp.StatusCode)
	}
}

// TestDemoteSurvivesRestart demotes a sketch, shuts the server down
// cleanly (the drain checkpoint must read the cold blob) and recovers:
// the sketch must come back with its exact pre-demotion answers.
func TestDemoteSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	rebuilt, err := store.Rebuild(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(store.Options{Dir: dir, Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{IngestWorkers: 1, QueueDepth: 4, MemorySoftBytes: 1, ColdAfter: time.Nanosecond})
	if err := s.AttachStore(st, rebuilt, 0); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	create(t, ts, SketchConfig{Name: "x", Kind: KindUnit, Bins: 32, Seed: 9})
	var rows strings.Builder
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&rows, "item-%d\n", i%13)
	}
	if resp := postText(t, ts.URL+"/v1/sketches/x/ingest?sync=1", rows.String()); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}
	before := topk(t, ts, "x", 13)
	time.Sleep(time.Millisecond)
	s.maybeDemote()
	if e, _ := s.reg.Get("x"); !e.cold.Load() {
		t.Fatal("sketch not demoted")
	}
	shutdown(t, s, ts)

	s2, ts2 := durableServer(t, dir)
	defer shutdown(t, s2, ts2)
	after := topk(t, ts2, "x", 13)
	if len(after) != len(before) {
		t.Fatalf("recovered topk has %d items, want %d", len(after), len(before))
	}
	for i := range before {
		if after[i] != before[i] {
			t.Fatalf("recovered topk[%d] = %+v, want %+v", i, after[i], before[i])
		}
	}
}

// doInfo fetches one sketch's info DTO.
func doInfo(t *testing.T, ts *httptest.Server, name string) sketchInfo {
	t.Helper()
	var out sketchInfo
	doJSON(t, "GET", ts.URL+"/v1/sketches/"+name, nil, &out)
	return out
}

// TestPressureLoopEmergencyCheckpoint verifies the pressure loop
// answers a watermark trip with a checkpoint.
func TestPressureLoopEmergencyCheckpoint(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	dir := t.TempDir()
	rebuilt, err := store.Rebuild(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(store.Options{Dir: dir, Sync: store.SyncNever, DiskCheckEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{IngestWorkers: 1, QueueDepth: 4})
	if err := s.AttachStore(st, rebuilt, 0); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer shutdown(t, s, ts)
	create(t, ts, SketchConfig{Name: "x", Kind: KindUnit, Bins: 16, Seed: 1})

	if err := faultinject.Enable("disk.enospc"); err != nil {
		t.Fatal(err)
	}
	postText(t, ts.URL+"/v1/sketches/x/ingest?sync=1", "a\n") // trips the watermark
	deadline := time.Now().Add(5 * time.Second)
	for s.met.checkpoints.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("pressure loop never took the emergency checkpoint")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
