package server

// Admission control and memory watermarks: the server-side half of the
// overload story (the store's disk watermarks are the other half).
//
// Three mechanisms, all opt-in via Config:
//
//   - a global in-flight-bytes budget (MaxInflightBytes): every mutation
//     body charges its Content-Length on arrival and releases it when the
//     batch is applied (the charge rides the ingest job through the
//     queue), so queued-but-unapplied work is bounded. Over budget, the
//     request is shed with 503 + Retry-After before any decoding.
//   - a per-sketch token bucket (IngestRateRows): each sketch refills at
//     the configured rows/second up to IngestBurstRows; a batch that
//     outruns the bucket is shed with 429 + Retry-After computed from
//     the deficit, so well-behaved clients converge on the offered rate.
//   - a memory soft watermark (MemorySoftBytes, durable servers only):
//     when the estimated resident sketch footprint exceeds it, sketches
//     idle longer than ColdAfter are demoted — their exact state encoded
//     to a blob under <data-dir>/cold/ and the in-memory sketch freed.
//     The entry stays in the registry; the next touch revives it from
//     the blob. Checkpoints read the blob directly, so durability never
//     depends on reviving.
//
// Demotion safety: an entry is demoted only when nothing is in flight
// for it (appendedLSN == appliedLSN) and it has been untouched for
// ColdAfter. Every access path bumps lastAccess through ensureLive
// before touching sketch pointers, so ColdAfter merely needs to exceed
// the request timeout for in-flight requests to be safe.

import (
	"fmt"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// bytesPerBin is the resident-footprint estimate per sketch bin (item
// string header + label map slot + bin struct), used by the memory
// watermark. An estimate is enough: the watermark triggers shedding,
// it does not account.
const bytesPerBin = 128

// readOnlyRetryAfter is the Retry-After hint sent with mutations refused
// because the store's disk is below its hard watermark — long enough
// that a polite client does not hammer a full disk.
const readOnlyRetryAfter = 5 * time.Second

// admission is the global in-flight-bytes gate. max <= 0 disables the
// budget but the gauge still tracks.
type admission struct {
	max      int64
	inflight atomic.Int64
	lastShed atomic.Int64
}

// admit charges n bytes against the budget, refusing (and recording the
// shed) when the budget would be exceeded.
func (a *admission) admit(n int64) bool {
	if n <= 0 {
		return true
	}
	if next := a.inflight.Add(n); a.max > 0 && next > a.max {
		a.inflight.Add(-n)
		a.lastShed.Store(time.Now().UnixNano())
		return false
	}
	return true
}

// release returns n admitted bytes after their batch applied (or failed
// before handoff).
func (a *admission) release(n int64) {
	if n > 0 {
		a.inflight.Add(-n)
	}
}

// shedding reports whether the server is actively shedding load: a shed
// in the last second, or the in-flight budget over 90% consumed.
func (a *admission) shedding() bool {
	if time.Now().UnixNano()-a.lastShed.Load() < int64(time.Second) {
		return true
	}
	return a.max > 0 && a.inflight.Load()*10 >= a.max*9
}

// writeRetryError writes an error response with a Retry-After hint in
// whole seconds (minimum 1, the header's resolution).
func writeRetryError(w http.ResponseWriter, code int, after time.Duration, err error) {
	secs := int(after / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, code, err)
}

// admitBody charges the request body against the in-flight budget,
// writing the 503 shed response itself on refusal. The caller must
// release the returned charge unless it hands it to an ingest job.
func (s *Server) admitBody(w http.ResponseWriter, r *http.Request) (int64, bool) {
	charge := r.ContentLength
	if charge < 0 {
		charge = 0
	}
	if !s.adm.admit(charge) {
		s.met.shed503.Add(1)
		writeRetryError(w, http.StatusServiceUnavailable, time.Second,
			fmt.Errorf("server over its in-flight ingest budget (%d bytes); retry later", s.adm.max))
		return 0, false
	}
	return charge, true
}

// takeTokens draws n rows from the entry's token bucket (refill rate
// rows/second, capacity burst). On refusal it returns the wait after
// which the deficit will have refilled — the 429's Retry-After hint.
func (e *entry) takeTokens(n, rate, burst float64) (bool, time.Duration) {
	if burst < rate {
		burst = rate
	}
	now := time.Now().UnixNano()
	e.tbMu.Lock()
	defer e.tbMu.Unlock()
	if e.tbLast == 0 {
		e.tbTokens = burst
	} else if dt := float64(now-e.tbLast) / float64(time.Second); dt > 0 {
		e.tbTokens += dt * rate
		if e.tbTokens > burst {
			e.tbTokens = burst
		}
	}
	e.tbLast = now
	if e.tbTokens >= n {
		e.tbTokens -= n
		return true, 0
	}
	return false, time.Duration((n - e.tbTokens) / rate * float64(time.Second))
}

// ensureLive stamps the entry's access time and, when it was demoted,
// restores its sketch from the cold blob. Every path that touches an
// entry's sketch pointers goes through here first.
func (s *Server) ensureLive(e *entry) error {
	e.lastAccess.Store(time.Now().UnixNano())
	if !e.cold.Load() {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.cold.Load() {
		return nil
	}
	blob, err := os.ReadFile(e.coldPath)
	if err != nil {
		s.met.reviveErrors.Add(1)
		s.log.Warn("sketch revive failed", "sketch", e.cfg.Name, "err", err)
		return fmt.Errorf("revive sketch %q: %w", e.cfg.Name, err)
	}
	rb, err := store.NewRebuilt(specFromConfig(e.cfg))
	if err != nil {
		s.met.reviveErrors.Add(1)
		s.log.Warn("sketch revive failed", "sketch", e.cfg.Name, "err", err)
		return fmt.Errorf("revive sketch %q: %w", e.cfg.Name, err)
	}
	if len(blob) > 0 {
		if err := rb.RestoreState(blob); err != nil {
			s.met.reviveErrors.Add(1)
			s.log.Warn("sketch revive failed", "sketch", e.cfg.Name, "err", err)
			return fmt.Errorf("revive sketch %q: %w", e.cfg.Name, err)
		}
	}
	e.unit, e.weighted, e.sharded, e.rollup = rb.Unit, rb.Weighted, rb.Sharded, rb.Rollup
	e.cold.Store(false)
	_ = os.Remove(e.coldPath)
	s.met.revivals.Add(1)
	return nil
}

// sizeTotalLocked reads the sketch's size and total mass. Caller holds
// e.mu on a live entry.
func (e *entry) sizeTotalLocked() (int, float64) {
	switch e.cfg.Kind {
	case KindUnit:
		return e.unit.Size(), e.unit.Total()
	case KindWeighted:
		return e.weighted.Size(), e.weighted.Total()
	case KindSharded:
		return e.sharded.Size(), e.sharded.Total()
	case KindRollup:
		ws := e.rollup.Windows()
		if len(ws) == 0 {
			return 0, 0
		}
		return 0, e.rollup.TotalRange(ws[0], ws[len(ws)-1])
	}
	return 0, 0
}

// demote encodes the entry's exact state to its cold blob and frees the
// in-memory sketch. It refuses when anything is in flight (the
// appended/applied watermarks differ) so the blob is a complete cut.
// Reports whether the entry was demoted.
func (s *Server) demote(e *entry) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cold.Load() || e.appendedLSN.Load() != e.appliedLSN.Load() {
		return false
	}
	blob, err := e.encodeState()
	if err != nil {
		return false
	}
	size, total := e.sizeTotalLocked()
	dir := filepath.Join(s.dur.st.Dir(), "cold")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return false
	}
	path := filepath.Join(dir, url.PathEscape(e.cfg.Name)+".uss")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return false
	}
	e.coldPath, e.coldSize, e.coldTotal = path, size, total
	e.unit, e.weighted, e.sharded, e.rollup = nil, nil, nil, nil
	e.qe, e.prep, e.enc = nil, nil, nil
	e.cold.Store(true)
	s.met.demotions.Add(1)
	return true
}

// maybeDemote checks the resident-footprint estimate against the memory
// soft watermark and demotes the coldest idle sketches until back under.
// Durable servers only — demotion needs somewhere to put the state.
func (s *Server) maybeDemote() {
	soft := s.cfg.MemorySoftBytes
	if soft <= 0 || s.dur == nil {
		return
	}
	now := time.Now().UnixNano()
	var est int64
	var cands []*entry
	for _, e := range s.reg.List() {
		if e.cold.Load() {
			continue
		}
		est += int64(e.capacity()) * bytesPerBin
		if now-e.lastAccess.Load() >= int64(s.cfg.ColdAfter) {
			cands = append(cands, e)
		}
	}
	if est <= soft {
		return
	}
	sort.Slice(cands, func(i, j int) bool {
		return cands[i].lastAccess.Load() < cands[j].lastAccess.Load()
	})
	for _, e := range cands {
		if est <= soft {
			return
		}
		if s.demote(e) {
			est -= int64(e.capacity()) * bytesPerBin
		}
	}
}

// pressureLoop is the durable server's background pressure responder:
// it takes an emergency checkpoint when the store crosses a disk
// watermark (checkpoints truncate the log — the one way the server can
// return disk space on its own) and runs memory-watermark demotion.
func (s *Server) pressureLoop() {
	defer s.dur.wg.Done()
	t := time.NewTicker(500 * time.Millisecond)
	defer t.Stop()
	var seenTrips int64
	for {
		select {
		case <-s.dur.stop:
			return
		case <-t.C:
			sm := s.dur.st.Metrics()
			if trips := sm.DiskSoftTrips.Load() + sm.DiskHardTrips.Load(); trips > seenTrips {
				seenTrips = trips
				if err := s.Checkpoint(); err != nil {
					s.met.checkpointErrors.Add(1)
					s.log.Warn("emergency checkpoint failed under disk pressure", "err", err)
				}
			}
			s.maybeDemote()
		}
	}
}
