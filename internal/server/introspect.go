package server

import (
	"errors"
	"net/http"
	"strconv"
)

// errBadK rejects non-positive or non-numeric ?k= values.
var errBadK = errors.New("k must be a positive integer")

// handleIntrospectHot serves GET /v1/introspect/hot: the server's own
// traffic summarized by the paper's sketches — hottest tenant sketches
// by ingested rows, hottest (sketch, item) pairs (sampled, scaled), and
// most-requested sketches. ?k= bounds each list (default 10).
func (s *Server) handleIntrospectHot(w http.ResponseWriter, r *http.Request) {
	k := 10
	if kq := r.URL.Query().Get("k"); kq != "" {
		n, err := strconv.Atoi(kq)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, errBadK)
			return
		}
		k = n
	}
	writeJSON(w, http.StatusOK, s.ob.Hot.Report(k))
}
