// Package server implements ussd, the multi-tenant HTTP sketch service:
// a registry of named Unbiased Space Saving sketches (unit, weighted,
// sharded, rollup) behind a REST-ish API for ingesting rows, shipping
// snapshots and querying — the paper's §5.5 serialize → ship → merge
// pipeline with a network in the middle.
//
// # Endpoints
//
//	POST   /v1/sketches                      create (SketchConfig JSON)
//	GET    /v1/sketches                      list configs + stats
//	GET    /v1/sketches/{name}               info/stats
//	DELETE /v1/sketches/{name}               drop
//	POST   /v1/sketches/{name}/ingest        batched rows (text or JSON)
//	POST   /v1/sketches/{name}/snapshot      push a wire-v2 snapshot (merge in)
//	GET    /v1/sketches/{name}/snapshot      pull the current state as wire v2
//	GET    /v1/sketches/{name}/topk?k=       heavy hitters
//	GET    /v1/sketches/{name}/estimate?item= per-item estimate
//	GET    /v1/sketches/{name}/sum?prefix=|suffix=|items=  subset sum
//	POST   /v1/sketches/{name}/query         §2 filter/group-by template
//	GET    /v1/sketches/{name}/range/topk    rollup: top-k over [from,to]
//	GET    /v1/sketches/{name}/range/sum     rollup: subset sum over [from,to]
//	GET    /v1/sketches/{name}/range/total   rollup: exact row count
//	GET    /healthz                          liveness
//	GET    /readyz                           readiness (recovery/catch-up done; follower lag)
//	GET    /metrics                          Prometheus text counters + histograms
//	GET    /debug/traces                     span ring (?trace=<32 hex> filters)
//	GET    /v1/introspect/hot                self-instrumented heavy hitters (?k=)
//	GET    /v1/replication/status            role, timeline, log position
//	GET    /v1/replication/wal?from=&wait_ms= WAL stream (long-poll, framed records)
//	GET    /v1/replication/checkpoint        checkpoint bundle (follower catch-up)
//	POST   /v1/replication/promote           promote this follower to primary
//
// # Concurrency and ownership
//
// The registry is a read-mostly map: request handlers take its read lock
// only to resolve a name to an entry pointer, never across sketch work.
// Each entry owns its sketch behind an entry mutex — except sharded
// entries, whose ShardedSketch is internally synchronized, so ingest
// batches flow into ShardedSketch.UpdateBatch and top-k reads come off
// its lock-free cached snapshot without the entry lock. Query evaluation
// reuses the PR 2 cached read path: one engine and a prepared-query cache
// per entry, revalidated against the sketch's version counters, so a
// query against an unchanged sketch re-parses nothing. Rollup range
// queries land on internal/rollup's incremental merge tree and memos.
//
// Ingest is batched and, by default, asynchronous: the handler decodes
// the request body into a pooled batch (see ingestBatch), enqueues it and
// replies 202; a fixed pool of worker goroutines applies batches in
// arrival order per queue. `?sync=1` applies the batch inline and replies
// 200 for read-after-write callers. Pushed snapshots are decoded with
// uss.DecodeBins and merged under the entry lock with uss.MergeBins —
// bins, never sketches, cross the wire.
//
// Shutdown drains: the HTTP server stops accepting, in-flight handlers
// finish, the ingest queue runs dry, then workers exit. Rows accepted
// with a 202 are therefore applied before Shutdown returns.
package server

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	uss "repro"
	"repro/internal/hashx"
	"repro/internal/obs"
)

// Config parameterizes a Server.
type Config struct {
	// Addr is the listen address for ListenAndServe (default ":8632").
	Addr string
	// IngestWorkers is the number of goroutines applying async ingest
	// batches (default 4).
	IngestWorkers int
	// QueueDepth is the async ingest queue length in batches; a full
	// queue applies backpressure by blocking the handler (default 256).
	QueueDepth int
	// MaxBodyBytes caps ingest/push request bodies (default 32 MiB).
	MaxBodyBytes int64
	// RequestTimeout bounds every request's context — handlers observe
	// client disconnects and this deadline through r.Context(), so a
	// dead client can no longer park a sync ingest on a worker slot
	// forever (default 60s; < 0 disables).
	RequestTimeout time.Duration
	// IngestRateRows caps each sketch's ingest rate in rows/second.
	// Batches past the rate are shed with 429 + Retry-After computed
	// from the deficit. 0 disables per-sketch admission control.
	IngestRateRows float64
	// IngestBurstRows is the token-bucket capacity — the largest batch
	// admitted instantly (default 2× IngestRateRows). Size it above the
	// biggest legitimate batch or that batch can never be admitted.
	IngestBurstRows float64
	// MaxInflightBytes bounds the total mutation-body bytes admitted but
	// not yet applied; over budget, mutations are shed with 503 +
	// Retry-After before decoding. 0 disables the budget.
	MaxInflightBytes int64
	// MemorySoftBytes is the resident sketch-memory watermark: above it
	// a durable server demotes sketches idle longer than ColdAfter to
	// on-disk blobs, reviving them on next access. 0 disables demotion.
	MemorySoftBytes int64
	// ColdAfter is how long a sketch must go untouched before it is a
	// demotion candidate (default 5m). Keep it above RequestTimeout so
	// an in-flight request can never see its sketch demoted under it.
	ColdAfter time.Duration
	// Node labels this instance's spans and log lines (default Addr).
	Node string
	// Log receives structured events; nil discards. Handlers and the
	// background loops attach component + trace fields to it.
	Log *slog.Logger
	// SlowRequest is the slow-span structured-log threshold; spans at
	// least this long are logged at Warn (0 disables).
	SlowRequest time.Duration
	// TraceDisabled turns off span/histogram recording (the overhead
	// benchmark's baseline; trace *propagation* still works).
	TraceDisabled bool
}

func (c *Config) defaults() {
	if c.Addr == "" {
		c.Addr = ":8632"
	}
	if c.IngestWorkers <= 0 {
		c.IngestWorkers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.IngestBurstRows <= 0 {
		c.IngestBurstRows = 2 * c.IngestRateRows
	}
	if c.ColdAfter <= 0 {
		c.ColdAfter = 5 * time.Minute
	}
	if c.Node == "" {
		c.Node = c.Addr
	}
	if c.Log == nil {
		c.Log = obs.NopLogger()
	}
}

// ingestJob is one queued unit of sketch work bound for one entry:
// either a decoded ingest batch (b non-nil) or a decoded snapshot push
// (push non-nil). lsn is the job's WAL record on a durable server (0
// otherwise); done, when non-nil, receives the apply's result so sync
// callers can wait without applying inline (durable mode applies
// everything on the entry's worker to keep per-entry LSN order).
type ingestJob struct {
	e    *entry
	b    *ingestBatch
	push []uss.Bin
	red  uss.Reduction
	lsn  uint64
	done chan applyResult
	// charge is the job's admitted in-flight bytes, released by the
	// worker after the apply (admission.go).
	charge int64
}

// applyResult reports one applied job back to a waiting handler.
type applyResult struct {
	size  int
	total float64
	err   error
}

// Server is one ussd instance: registry, router, metrics and the async
// ingest worker pool. Create with New, serve with ListenAndServe (or
// mount Handler in a test server), stop with Shutdown.
type Server struct {
	cfg Config
	reg *Registry
	met *metrics
	mux *http.ServeMux

	// ob is the instance's observability bundle: tracer + span ring,
	// latency histograms, hot-traffic sketches, structured logger. Per
	// instance, not per process, so in-process multi-node tests keep
	// separate rings with distinct node labels.
	ob  *obs.Observer
	log *slog.Logger

	// hs is built in New (never nil), so Shutdown always has a server to
	// stop even when it races a Serve goroutine that has not run yet —
	// net/http makes Shutdown-before-Serve well-defined (the later Serve
	// returns ErrServerClosed).
	hs   *http.Server
	lnMu sync.Mutex
	ln   net.Listener

	// jobs is one queue per ingest worker; an entry's jobs always land
	// on the same queue (by name hash), so each entry has a single
	// applier and sees its jobs in enqueue order — the ordering durable
	// mode's applied-LSN watermark relies on.
	jobs    []chan ingestJob
	workers sync.WaitGroup
	qmu     sync.RWMutex
	closed  bool

	// dur is the durability harness, nil unless AttachStore was called.
	dur *durableState

	// adm is the global in-flight-bytes admission gate (admission.go).
	adm admission

	// extraMetrics are embedder-registered /metrics emitters (the
	// cluster agent exports its breaker states through one).
	extraMu      sync.Mutex
	extraMetrics []func(w io.Writer)

	// Replication state: role and readiness gates, the timeline this
	// node's log belongs to, and the follower lag gauges (see
	// replication.go). A fresh server is a ready primary on epoch 0.
	role         atomic.Int32
	ready        atomic.Bool
	epoch        atomic.Uint64
	promoteLSN   atomic.Uint64
	replLagLSNs  atomic.Int64
	replCaughtUp atomic.Int64 // unix nanos of the last caught-up moment
}

// New builds a Server and starts its ingest workers. Callers must
// eventually Shutdown it, even when it never listens.
func New(cfg Config) *Server {
	cfg.defaults()
	s := &Server{
		cfg:  cfg,
		reg:  NewRegistry(),
		met:  &metrics{start: time.Now()},
		mux:  http.NewServeMux(),
		jobs: make([]chan ingestJob, cfg.IngestWorkers),
		ob: obs.New(obs.Options{
			Node:        cfg.Node,
			SlowRequest: cfg.SlowRequest,
			Disabled:    cfg.TraceDisabled,
			Log:         cfg.Log,
		}),
	}
	s.log = cfg.Log.With("component", "server", "node", cfg.Node)
	s.RegisterMetrics(s.ob.EmitMetrics)
	s.adm.max = cfg.MaxInflightBytes
	depth := cfg.QueueDepth / cfg.IngestWorkers
	if depth < 1 {
		depth = 1
	}
	for i := range s.jobs {
		s.jobs[i] = make(chan ingestJob, depth)
	}
	s.ready.Store(true) // a fresh in-memory server is immediately ready
	s.routes()
	s.hs = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	s.workers.Add(cfg.IngestWorkers)
	for i := 0; i < cfg.IngestWorkers; i++ {
		go s.ingestWorker(i)
	}
	return s
}

// Registry exposes the sketch table, letting embedders (tests, the bench
// driver, examples) pre-create sketches without an HTTP round-trip.
func (s *Server) Registry() *Registry { return s.reg }

// Obs exposes the instance's observability bundle so embedders (the
// cluster agent, the store wiring in cmd/ussd) record into the same
// tracer, histograms and hot-traffic sketches the node exports.
func (s *Server) Obs() *obs.Observer { return s.ob }

// Log exposes the instance's structured logger so embedders log with the
// same handler and node field.
func (s *Server) Log() *slog.Logger { return s.cfg.Log }

// Handler returns the routed handler with tracing, metrics
// instrumentation and the request-timeout context wrapper, for mounting
// under httptest or an external server. The obs middleware is outermost
// so the per-class latency histograms and the edge span cover the whole
// request, timeout wrapper included.
func (s *Server) Handler() http.Handler {
	h := http.Handler(s.mux)
	if s.cfg.RequestTimeout > 0 {
		inner := h
		h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			inner.ServeHTTP(w, r.WithContext(ctx))
		})
	}
	return s.ob.Middleware(s.met.instrument(h))
}

// ListenAndServe binds cfg.Addr and serves until Shutdown. It returns
// nil after a clean Shutdown.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve serves on ln until Shutdown. A Serve that loses the race with
// Shutdown returns nil without accepting anything.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	err := s.hs.Serve(ln)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Addr returns the bound listen address, once Serve has been called.
func (s *Server) Addr() string {
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown stops accepting requests, waits for in-flight handlers, then
// drains the async ingest queues so every batch acknowledged with 202 is
// applied before it returns. On a durable server the drain is followed
// by a final checkpoint — the SIGTERM checkpoint-on-drain — and the
// store is closed. ctx bounds only the HTTP connection drain; queued
// sketch work always completes.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.hs.Shutdown(ctx)
	first := false
	s.qmu.Lock()
	if !s.closed {
		s.closed = true
		first = true
		for _, q := range s.jobs {
			close(q)
		}
	}
	s.qmu.Unlock()
	s.workers.Wait()
	if d := s.dur; d != nil && first {
		close(d.stop) // stops the checkpoint and pressure loops
		d.wg.Wait()
		cerr := s.Checkpoint() // checkpoint-on-drain: the clean-exit baseline
		s.dur = nil
		if serr := d.st.Close(); cerr == nil {
			cerr = serr
		}
		if err == nil {
			err = cerr
		}
	}
	return err
}

// queueFor routes an entry to its worker queue by name hash.
func (s *Server) queueFor(e *entry) chan ingestJob {
	return s.jobs[int(hashx.Sum32a(e.cfg.Name)%uint32(len(s.jobs)))]
}

// enqueue hands a job to its entry's worker, blocking for backpressure
// when that queue is full — but no further than ctx allows, so a dead
// or timed-out client cannot park its handler on a full queue forever.
// queued=false with a nil error means the server is shutting down;
// queued=false with ctx's error means the deadline struck first.
func (s *Server) enqueue(ctx context.Context, j ingestJob) (queued bool, err error) {
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	if s.closed {
		return false, nil
	}
	select {
	case s.queueFor(j.e) <- j:
		s.met.queueDepth.Add(1)
		return true, nil
	default:
	}
	select {
	case s.queueFor(j.e) <- j:
		s.met.queueDepth.Add(1)
		return true, nil
	case <-ctx.Done():
		return false, ctx.Err()
	}
}

// ingestWorker applies its queue's jobs until the queue closes.
func (s *Server) ingestWorker(i int) {
	defer s.workers.Done()
	for j := range s.jobs[i] {
		s.met.queueDepth.Add(-1)
		if j.b != nil {
			s.applyBatch(j.e, j.b, j.lsn)
			s.adm.release(j.charge)
			if j.done != nil {
				j.done <- applyResult{}
			}
			putBatch(j.b)
			continue
		}
		res := s.applyPush(j.e, j.push, j.red, j.lsn)
		s.adm.release(j.charge)
		j.done <- res
	}
}

// applyBatch routes one decoded batch into its entry's sketch, taking the
// entry lock for the single-writer kinds and going straight to the
// internally synchronized batched path for sharded entries — except in
// durable mode (lsn > 0), where sharded applies also take the entry lock
// so the applied-LSN watermark and checkpoint encoding see one
// consistent state. The row/dropped counters advance inside the same
// locked region as the watermark: a checkpoint reading (appliedLSN,
// rows) under e.mu must see a batch in both or in neither, or recovery
// would gate the batch's record out while its rows are missing from the
// persisted counter. This mirrors the per-kind replay in
// internal/store's rebuild (RebuiltSketch.applyIngest) — the two must
// stay in lockstep for recovery to be bit-identical, which
// TestKillDashNineRecovery pins.
//
// Sketch-update semantics are identical with and without the lock; the
// non-durable sharded path skips it so concurrent batches keep flowing
// through UpdateBatch's per-shard locking.
func (s *Server) applyBatch(e *entry, b *ingestBatch, lsn uint64) {
	if s.ensureLive(e) != nil {
		// The cold blob failed to restore; the batch cannot apply. The
		// record (when durable) is still on the log and replays on the
		// next boot against the checkpointed state.
		return
	}
	rows := int64(len(b.items))
	finish := func(dropped int64) { // caller holds e.mu (or is lock-free sharded)
		e.rows.Add(rows)
		e.dropped.Add(dropped)
		if lsn > 0 {
			e.appliedLSN.Store(lsn)
		}
	}
	switch e.cfg.Kind {
	case KindSharded:
		if lsn > 0 {
			e.mu.Lock()
			e.sharded.UpdateBatch(b.items)
			finish(0)
			e.mu.Unlock()
		} else {
			e.sharded.UpdateBatch(b.items)
			finish(0)
		}
	case KindUnit:
		e.mu.Lock()
		e.unit.UpdateAll(b.items)
		finish(0)
		e.mu.Unlock()
	case KindWeighted:
		e.mu.Lock()
		for i, it := range b.items {
			w := 1.0
			if i < len(b.ws) {
				w = b.ws[i]
			}
			e.weighted.Update(it, w)
		}
		finish(0)
		e.mu.Unlock()
	case KindRollup:
		var dropped int64
		e.mu.Lock()
		for i, it := range b.items {
			if !e.rollup.Update(it, b.ats[i]) {
				dropped++
			}
		}
		finish(dropped)
		e.mu.Unlock()
	}
	s.met.rowsIngested.Add(rows)
	if !s.ob.Disabled() {
		s.ob.Hot.ObserveIngest(e.cfg.Name, b.items)
	}
}

// routes wires the endpoint table. Method-qualified patterns need the
// Go 1.22 ServeMux; {name} segments never match slashes.
func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/traces", s.ob.HandleTraces)
	s.mux.HandleFunc("GET /v1/introspect/hot", s.handleIntrospectHot)

	s.mux.HandleFunc("GET /v1/replication/status", s.handleReplStatus)
	s.mux.HandleFunc("GET /v1/replication/wal", s.handleReplWAL)
	s.mux.HandleFunc("GET /v1/replication/checkpoint", s.handleReplCheckpoint)
	s.mux.HandleFunc("POST /v1/replication/promote", s.handleReplPromote)

	s.mux.HandleFunc("POST /v1/sketches", s.handleCreate)
	s.mux.HandleFunc("GET /v1/sketches", s.handleList)
	s.mux.HandleFunc("GET /v1/sketches/{name}", s.handleInfo)
	s.mux.HandleFunc("DELETE /v1/sketches/{name}", s.handleDelete)

	s.mux.HandleFunc("POST /v1/sketches/{name}/ingest", s.handleIngest)
	s.mux.HandleFunc("POST /v1/sketches/{name}/snapshot", s.handlePush)
	s.mux.HandleFunc("GET /v1/sketches/{name}/snapshot", s.handlePull)

	s.mux.HandleFunc("GET /v1/sketches/{name}/topk", s.handleTopK)
	s.mux.HandleFunc("GET /v1/sketches/{name}/estimate", s.handleEstimate)
	s.mux.HandleFunc("GET /v1/sketches/{name}/sum", s.handleSum)
	s.mux.HandleFunc("POST /v1/sketches/{name}/query", s.handleQuery)

	s.mux.HandleFunc("GET /v1/sketches/{name}/range/topk", s.handleRangeTopK)
	s.mux.HandleFunc("GET /v1/sketches/{name}/range/sum", s.handleRangeSum)
	s.mux.HandleFunc("GET /v1/sketches/{name}/range/total", s.handleRangeTotal)
}

// lookup resolves {name} or writes the statusFor-mapped 404. It also
// revives a demoted entry before the handler touches sketch pointers.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*entry, bool) {
	name := r.PathValue("name")
	e, ok := s.reg.Get(name)
	if !ok {
		err := fmt.Errorf("sketch %q: %w", name, ErrNotFound)
		writeError(w, statusFor(err), err)
		return nil, false
	}
	if err := s.ensureLive(e); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return nil, false
	}
	if !s.ob.Disabled() {
		s.ob.Hot.ObserveRequest(name)
	}
	return e, true
}
