package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	uss "repro"
	"repro/internal/store"
)

// durableServer boots a Server attached to a store over dir, recovering
// whatever the directory already holds.
func durableServer(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	rebuilt, err := store.Rebuild(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(store.Options{Dir: dir, Sync: store.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{IngestWorkers: 2, QueueDepth: 8})
	if err := s.AttachStore(st, rebuilt, 0); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	return s, ts
}

func shutdown(t *testing.T, s *Server, ts *httptest.Server) {
	t.Helper()
	ts.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// topk fetches a sketch's top-k over HTTP.
func topk(t *testing.T, ts *httptest.Server, name string, k int) []binDTO {
	t.Helper()
	var out struct {
		Items []binDTO `json:"items"`
	}
	doJSON(t, "GET", fmt.Sprintf("%s/v1/sketches/%s/topk?k=%d", ts.URL, name, k), nil, &out)
	return out.Items
}

// TestDurableRecoveryAllKinds drives every sketch kind through the
// write-ahead path, recovers twice — once from the raw WAL while the
// first server is still live (the crash view), once after a clean
// shutdown (the checkpoint view) — and requires the recovered top-k to
// be bit-identical to the pre-restart answers.
func TestDurableRecoveryAllKinds(t *testing.T) {
	dir := t.TempDir()
	s, ts := durableServer(t, dir)

	for _, cfg := range []SketchConfig{
		{Name: "u", Kind: KindUnit, Bins: 64, Seed: 11},
		{Name: "w", Kind: KindWeighted, Bins: 128, Seed: 12},
		{Name: "s", Kind: KindSharded, Bins: 32, Shards: 4, Seed: 13},
		{Name: "r", Kind: KindRollup, Bins: 32, WindowLength: 10, Retain: 8, Seed: 14},
		{Name: "doomed", Kind: KindUnit, Bins: 8, Seed: 15},
	} {
		create(t, ts, cfg)
	}

	ingest := func(name, body string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/sketches/"+name+"/ingest?sync=1", "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sync ingest %s: status %d", name, resp.StatusCode)
		}
	}
	var unitRows, weightedRows, shardedRows, rollupRows strings.Builder
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&unitRows, "u-item-%d\n", i%23)
		fmt.Fprintf(&weightedRows, "w-item-%d\t%d\n", i%17, 1+i%3)
		fmt.Fprintf(&shardedRows, "s-item-%d\n", i%31)
		fmt.Fprintf(&rollupRows, "r-item-%d\t%d\n", i%13, i%60)
	}
	ingest("u", unitRows.String())
	ingest("w", weightedRows.String())
	ingest("s", shardedRows.String())
	ingest("r", rollupRows.String())
	ingest("doomed", "gone\n")

	// A pushed agent snapshot rides the WAL too.
	agent := uss.New(64, uss.WithSeed(99))
	for i := 0; i < 400; i++ {
		agent.Update(fmt.Sprintf("w-item-%d", i%9))
	}
	blob, err := agent.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sketches/w/snapshot", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("push status %d", resp.StatusCode)
	}

	// Deletes are logged: this sketch must stay dead after recovery.
	if resp := doJSON(t, "DELETE", ts.URL+"/v1/sketches/doomed", nil, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", resp.StatusCode)
	}

	want := map[string][]binDTO{}
	for _, name := range []string{"u", "w", "s"} {
		want[name] = topk(t, ts, name, 10)
	}
	var rangeWant struct {
		Items []binDTO `json:"items"`
	}
	doJSON(t, "GET", ts.URL+"/v1/sketches/r/range/topk?from=0&to=59&k=10", nil, &rangeWant)

	// Crash view: rebuild read-only from the live WAL — no checkpoint,
	// no shutdown — and compare state bit for bit.
	crash, err := store.Rebuild(dir)
	if err != nil {
		t.Fatal(err)
	}
	if crash.Stats.CheckpointGen != 0 {
		t.Fatalf("unexpected checkpoint before shutdown: %+v", crash.Stats)
	}
	if _, ok := crash.Sketches["doomed"]; ok {
		t.Fatal("crash view resurrected a deleted sketch")
	}
	assertTopK(t, "crash unit", crash.Sketches["u"].Unit.TopK(10), want["u"])
	assertTopK(t, "crash weighted", crash.Sketches["w"].Weighted.TopK(10), want["w"])
	assertTopK(t, "crash sharded", crash.Sketches["s"].Sharded.TopK(10), want["s"])
	assertTopK(t, "crash rollup", crash.Sketches["r"].Rollup.TopKRange(0, 59, 10), rangeWant.Items)

	// Clean shutdown checkpoints; the second boot starts from it.
	shutdown(t, s, ts)
	s2, ts2 := durableServer(t, dir)
	defer shutdown(t, s2, ts2)

	var listed struct {
		Sketches []sketchInfo `json:"sketches"`
	}
	doJSON(t, "GET", ts2.URL+"/v1/sketches", nil, &listed)
	if len(listed.Sketches) != 4 {
		t.Fatalf("recovered %d sketches, want 4", len(listed.Sketches))
	}
	for _, name := range []string{"u", "w", "s"} {
		got := topk(t, ts2, name, 10)
		assertTopK(t, "recovered "+name, binsOf(got), want[name])
	}
	var rangeGot struct {
		Items []binDTO `json:"items"`
	}
	doJSON(t, "GET", ts2.URL+"/v1/sketches/r/range/topk?from=0&to=59&k=10", nil, &rangeGot)
	assertTopK(t, "recovered rollup", binsOf(rangeGot.Items), rangeWant.Items)

	var info sketchInfo
	doJSON(t, "GET", ts2.URL+"/v1/sketches/u", nil, &info)
	if info.Rows != 500 {
		t.Fatalf("recovered unit rows = %d, want 500", info.Rows)
	}
	resp = doJSON(t, "GET", ts2.URL+"/v1/sketches/doomed", nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted sketch came back: status %d", resp.StatusCode)
	}

	// The recovered server keeps ingesting and recovering.
	resp, err = http.Post(ts2.URL+"/v1/sketches/u/ingest?sync=1", "text/plain", strings.NewReader("after-reboot\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	doJSON(t, "GET", ts2.URL+"/v1/sketches/u", nil, &info)
	if info.Rows != 501 {
		t.Fatalf("post-recovery ingest: rows = %d, want 501", info.Rows)
	}
}

// binsOf converts DTOs to uss bins for comparison.
func binsOf(dtos []binDTO) []uss.Bin {
	out := make([]uss.Bin, len(dtos))
	for i, d := range dtos {
		out[i] = uss.Bin{Item: d.Item, Count: d.Count}
	}
	return out
}

func assertTopK(t *testing.T, label string, got []uss.Bin, want []binDTO) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d items, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Item != want[i].Item || got[i].Count != want[i].Count {
			t.Fatalf("%s[%d]: (%q, %v) != (%q, %v)", label, i, got[i].Item, got[i].Count, want[i].Item, want[i].Count)
		}
	}
}

// TestDurableAsyncIngestIsRecoverable pins the 202 contract: a batch
// acknowledged async is in the WAL before the acknowledgement, so it
// survives even if it has not been applied yet.
func TestDurableAsyncIngestIsRecoverable(t *testing.T) {
	dir := t.TempDir()
	s, ts := durableServer(t, dir)
	create(t, ts, SketchConfig{Name: "a", Kind: KindUnit, Bins: 32, Seed: 1})
	for batch := 0; batch < 8; batch++ {
		var rows strings.Builder
		for i := 0; i < 25; i++ {
			fmt.Fprintf(&rows, "item-%d\n", i)
		}
		resp, err := http.Post(ts.URL+"/v1/sketches/a/ingest", "text/plain", strings.NewReader(rows.String()))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("async ingest status %d", resp.StatusCode)
		}
	}
	// Every acknowledged batch is already on the log, applied or not.
	crash, err := store.Rebuild(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := crash.Sketches["a"].Rows; got != 200 {
		t.Fatalf("WAL replay found %d rows, want 200", got)
	}
	shutdown(t, s, ts)
}

// TestDurableCheckpointCompaction pins the compaction protocol: after a
// checkpoint the log shrinks to the tail, and recovery from checkpoint +
// tail matches recovery from the full log.
func TestDurableCheckpointCompaction(t *testing.T) {
	dir := t.TempDir()
	rebuilt, err := store.Rebuild(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(store.Options{Dir: dir, Sync: store.SyncNever, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{IngestWorkers: 2, QueueDepth: 8})
	if err := s.AttachStore(st, rebuilt, 0); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	// An idle sketch that never sees a write: its watermark is its
	// create record, so it must not pin the checkpoint cutoff at 0 and
	// block compaction.
	create(t, ts, SketchConfig{Name: "idle", Kind: KindWeighted, Bins: 8, Seed: 9})
	create(t, ts, SketchConfig{Name: "c", Kind: KindUnit, Bins: 64, Seed: 3})
	for batch := 0; batch < 30; batch++ {
		var rows strings.Builder
		for i := 0; i < 20; i++ {
			fmt.Fprintf(&rows, "item-%03d\n", (batch*20+i)%41)
		}
		resp, err := http.Post(ts.URL+"/v1/sketches/c/ingest?sync=1", "text/plain", strings.NewReader(rows.String()))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	segsBefore := countSegments(t, dir)
	if segsBefore < 3 {
		t.Fatalf("want a multi-segment log before checkpoint, got %d", segsBefore)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if segsAfter := countSegments(t, dir); segsAfter >= segsBefore {
		t.Fatalf("checkpoint did not compact: %d -> %d segments", segsBefore, segsAfter)
	}

	// Post-checkpoint tail records replay on top of the checkpoint: the
	// crash view (read-only rebuild of checkpoint + tail, no shutdown)
	// must match the live server bit for bit.
	resp, err := http.Post(ts.URL+"/v1/sketches/c/ingest?sync=1", "text/plain", strings.NewReader("tail-item\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	preTopK := topk(t, ts, "c", 10)
	crash, err := store.Rebuild(dir)
	if err != nil {
		t.Fatal(err)
	}
	if crash.Stats.CheckpointGen == 0 {
		t.Fatal("crash view ignored the checkpoint")
	}
	assertTopK(t, "checkpoint+tail crash view", crash.Sketches["c"].Unit.TopK(10), preTopK)
	if crash.Sketches["c"].Rows != 601 {
		t.Fatalf("crash view rows = %d, want 601", crash.Sketches["c"].Rows)
	}

	// And a clean restart answers identically.
	shutdown(t, s, ts)
	s2, ts2 := durableServer(t, dir)
	defer shutdown(t, s2, ts2)
	assertTopK(t, "compacted recovery", binsOf(topk(t, ts2, "c", 10)), preTopK)
	var info sketchInfo
	doJSON(t, "GET", ts2.URL+"/v1/sketches/c", nil, &info)
	if info.Rows != 601 {
		t.Fatalf("rows after compacted recovery = %d, want 601", info.Rows)
	}
}

func countSegments(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, ent := range ents {
		if strings.HasSuffix(ent.Name(), ".wal") {
			n++
		}
	}
	return n
}

// TestCreateSketchDurable pins the programmatic create path: logged when
// durable, and ErrExists detectable for recovered names.
func TestCreateSketchDurable(t *testing.T) {
	dir := t.TempDir()
	s, ts := durableServer(t, dir)
	if err := s.CreateSketch(SketchConfig{Name: "pre", Kind: KindUnit, Bins: 16, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateSketch(SketchConfig{Name: "pre", Kind: KindUnit, Bins: 16}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v, want ErrExists", err)
	}
	shutdown(t, s, ts)

	s2, ts2 := durableServer(t, dir)
	defer shutdown(t, s2, ts2)
	if err := s2.CreateSketch(SketchConfig{Name: "pre", Kind: KindUnit, Bins: 16}); !errors.Is(err, ErrExists) {
		t.Fatalf("create over recovered sketch: %v, want ErrExists", err)
	}
}
