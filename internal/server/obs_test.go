package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// checkExposition is a strict Prometheus text-exposition checker: every
// sample's family must have declared # HELP and # TYPE (in that order)
// before its first sample, no family may declare TYPE or HELP twice,
// histogram families may only emit _bucket/_sum/_count samples, and
// every non-comment line must parse as "name{labels} value".
func checkExposition(t *testing.T, body string) {
	t.Helper()
	help := map[string]bool{}
	typ := map[string]string{}
	sampled := map[string]bool{}
	lineNo := 0
	for _, line := range strings.Split(body, "\n") {
		lineNo++
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, found := strings.Cut(rest, " ")
			if !found {
				t.Fatalf("line %d: HELP without text: %q", lineNo, line)
			}
			if help[name] {
				t.Fatalf("line %d: duplicate HELP for %s", lineNo, name)
			}
			if sampled[name] {
				t.Fatalf("line %d: HELP for %s after its first sample", lineNo, name)
			}
			help[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, found := strings.Cut(rest, " ")
			if !found {
				t.Fatalf("line %d: TYPE without kind: %q", lineNo, line)
			}
			if _, dup := typ[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			if sampled[name] {
				t.Fatalf("line %d: TYPE for %s after its first sample", lineNo, name)
			}
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown TYPE %q", lineNo, kind)
			}
			typ[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", lineNo, line)
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		rest := line[len(name):]
		if strings.HasPrefix(rest, "{") {
			close := strings.LastIndex(rest, "}")
			if close < 0 {
				t.Fatalf("line %d: unterminated label set: %q", lineNo, line)
			}
			rest = rest[close+1:]
		}
		if !strings.HasPrefix(rest, " ") || len(strings.Fields(rest)) != 1 {
			t.Fatalf("line %d: malformed sample: %q", lineNo, line)
		}
		// Map histogram sample suffixes back to their family.
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name && typ[base] == "histogram" {
				family = base
				break
			}
		}
		k, ok := typ[family]
		if !ok {
			t.Fatalf("line %d: sample %s has no TYPE declaration", lineNo, name)
		}
		if !help[family] {
			t.Fatalf("line %d: sample %s has no HELP declaration", lineNo, name)
		}
		if k == "histogram" && family == name {
			t.Fatalf("line %d: histogram %s emitted a bare sample (want _bucket/_sum/_count)", lineNo, name)
		}
		sampled[family] = true
	}
	if len(typ) == 0 {
		t.Fatal("exposition body declared no families")
	}
}

// TestMetricsExpositionStrict scrapes a working server (durable off) and
// runs the full output through the strict checker: every series has
// HELP+TYPE exactly once before its samples, including the per-name
// ussd_sketch_rows series and the obs histogram families.
func TestMetricsExpositionStrict(t *testing.T) {
	_, ts := testServer(t)
	create(t, ts, SketchConfig{Name: "exp", Kind: KindUnit, Bins: 8})
	ingestText(t, ts, "exp", "a\nb\nc\n")
	getAndDiscard(t, ts.URL+"/v1/sketches/exp/topk?k=2")
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	checkExposition(t, out)
	for _, want := range []string{
		`ussd_sketch_rows{name="exp",kind="unit"} 3`,
		"# HELP ussd_sketch_rows ",
		"# HELP ussd_request_duration_seconds ",
		"# TYPE ussd_request_duration_seconds histogram",
		`ussd_request_duration_seconds_bucket{class="ingest",le="+Inf"} 1`,
		"# TYPE ussd_wal_fsync_duration_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// getAndDiscard GETs url and drains+closes the body so the client
// connection returns to the pool (the package leak gate watches).
func getAndDiscard(t *testing.T, url string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// ingestText posts newline-separated rows with ?sync=1 and asserts 200.
func ingestText(t *testing.T, ts *httptest.Server, name, rows string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sketches/"+name+"/ingest?sync=1",
		"text/plain", strings.NewReader(rows))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest %s: status %d", name, resp.StatusCode)
	}
}

// TestStatusRecorderFlusher pins satellite regression: the metrics
// middleware's wrapped writer must still satisfy http.Flusher (and
// expose Unwrap for http.ResponseController) so streaming endpoints
// flush through it.
func TestStatusRecorderFlusher(t *testing.T) {
	var isFlusher, flushed bool
	probe := &flushProbe{ResponseWriter: httptest.NewRecorder(), flushed: &flushed}
	m := &metrics{}
	h := m.instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, isFlusher = w.(http.Flusher)
		rc := http.NewResponseController(w)
		if err := rc.Flush(); err != nil {
			t.Errorf("ResponseController.Flush: %v", err)
		}
	}))
	h.ServeHTTP(probe, httptest.NewRequest("GET", "/v1/replication/wal", nil))
	if !isFlusher {
		t.Fatal("statusRecorder does not satisfy http.Flusher")
	}
	if !flushed {
		t.Fatal("Flush did not reach the underlying writer")
	}

	var sr any = &statusRecorder{ResponseWriter: httptest.NewRecorder()}
	if _, ok := sr.(interface{ Unwrap() http.ResponseWriter }); !ok {
		t.Fatal("statusRecorder does not expose Unwrap")
	}
}

// flushProbe records whether Flush propagated all the way down.
type flushProbe struct {
	http.ResponseWriter
	flushed *bool
}

func (f *flushProbe) Flush() { *f.flushed = true }

// TestIntrospectHot drives ingest + queries through the API and asserts
// the dogfooded sketches rank the hot tenant and hot item first.
func TestIntrospectHot(t *testing.T) {
	_, ts := testServer(t)
	create(t, ts, SketchConfig{Name: "hot", Kind: KindUnit, Bins: 16})
	create(t, ts, SketchConfig{Name: "cold", Kind: KindUnit, Bins: 16})
	var rows strings.Builder
	for i := 0; i < 640; i++ {
		rows.WriteString("popular\n")
	}
	ingestText(t, ts, "hot", rows.String())
	ingestText(t, ts, "cold", "x\n")
	for i := 0; i < 3; i++ {
		getAndDiscard(t, ts.URL+"/v1/sketches/hot/topk?k=1")
	}

	var rep obs.HotReport
	doJSON(t, "GET", ts.URL+"/v1/introspect/hot?k=5", nil, &rep)
	if rep.RowsObserved != 641 {
		t.Fatalf("rows observed = %d, want 641", rep.RowsObserved)
	}
	if len(rep.Tenants) == 0 || rep.Tenants[0].Sketch != "hot" {
		t.Fatalf("tenants = %+v, want hot first", rep.Tenants)
	}
	if len(rep.Items) == 0 || rep.Items[0].Item != "popular" || rep.Items[0].Sketch != "hot" {
		t.Fatalf("items = %+v, want (hot, popular) first", rep.Items)
	}
	if len(rep.Requests) == 0 || rep.Requests[0].Sketch != "hot" {
		t.Fatalf("requests = %+v, want hot first", rep.Requests)
	}

	resp, err := http.Get(ts.URL + "/v1/introspect/hot?k=0")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("k=0: status %d, want 400", resp.StatusCode)
	}
}

// TestDebugTracesEndpoint exercises the tracing edge end to end over
// HTTP: a request's response names its trace, and /debug/traces can
// retrieve the span by that ID.
func TestDebugTracesEndpoint(t *testing.T) {
	_, ts := testServer(t)
	create(t, ts, SketchConfig{Name: "tr", Kind: KindUnit, Bins: 8})
	resp, err := http.Get(ts.URL + "/v1/sketches/tr/topk?k=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	hv := resp.Header.Get(obs.TraceHeader)
	if hv == "" {
		t.Fatal("response missing trace header")
	}
	sc, err := obs.ParseHeader(hv)
	if err != nil {
		t.Fatalf("parse %q: %v", hv, err)
	}

	var out struct {
		Spans []struct {
			Trace string `json:"trace"`
			Name  string `json:"name"`
		} `json:"spans"`
	}
	doJSON(t, "GET", fmt.Sprintf("%s/debug/traces?trace=%s", ts.URL, sc.Trace), nil, &out)
	if len(out.Spans) != 1 || out.Spans[0].Name != "http.query" {
		t.Fatalf("trace lookup = %+v, want one http.query span", out.Spans)
	}
}
