package server

// Server-level group-commit tests: the HTTP ack ordering over a
// SyncInterval+GroupCommit store. An acknowledged request implies a
// covering fsync ran; a store whose fsyncs fail must answer 503 without
// acknowledging, even though the record is logged and will apply.

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/store"
)

// groupCommitServer boots a durable server whose store acks after the
// shared interval fsync.
func groupCommitServer(t *testing.T, dir string, every time.Duration) (*Server, *httptest.Server, *store.Store) {
	t.Helper()
	rebuilt, err := store.Rebuild(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(store.Options{Dir: dir, Sync: store.SyncInterval, SyncEvery: every, GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{IngestWorkers: 2, QueueDepth: 8, RequestTimeout: 500 * time.Millisecond})
	if err := s.AttachStore(st, rebuilt, 0); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	return s, ts, st
}

// TestGroupCommitServerAckImpliesFsync ingests through the group-commit
// ack gate and checks each acknowledged request was covered by an fsync,
// then restarts and requires the acked rows back bit-for-bit.
func TestGroupCommitServerAckImpliesFsync(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	dir := t.TempDir()
	s, ts, st := groupCommitServer(t, dir, time.Millisecond)

	create(t, ts, SketchConfig{Name: "u", Kind: KindUnit, Bins: 64, Seed: 11})
	for i := 0; i < 4; i++ {
		resp, err := http.Post(ts.URL+"/v1/sketches/u/ingest?sync=1", "text/plain",
			strings.NewReader("a\nb\nc\n"))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sync ingest %d: status %d", i, resp.StatusCode)
		}
		// The ack gate: acknowledged means fsynced.
		if st.SyncedLSN() < st.LastLSN() {
			t.Fatalf("acked ingest %d with synced LSN %d behind last LSN %d", i, st.SyncedLSN(), st.LastLSN())
		}
	}
	// Async acks ride the same gate.
	resp, err := http.Post(ts.URL+"/v1/sketches/u/ingest", "text/plain", strings.NewReader("d\ne\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async ingest: status %d", resp.StatusCode)
	}
	if st.SyncedLSN() < st.LastLSN() {
		t.Fatalf("202 sent with synced LSN %d behind last LSN %d", st.SyncedLSN(), st.LastLSN())
	}

	before := topk(t, ts, "u", 10)
	shutdown(t, s, ts)

	s2, ts2, _ := groupCommitServer(t, dir, time.Millisecond)
	defer shutdown(t, s2, ts2)
	after := topk(t, ts2, "u", 10)
	if len(after) != len(before) {
		t.Fatalf("recovered %d top-k items, want %d", len(after), len(before))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("recovered top-k[%d] = %+v, want %+v", i, after[i], before[i])
		}
	}
}

// TestGroupCommitServerNeverAcksUnfsynced arms wal.fail-fsync and checks
// the server times the ack out with a 503 instead of acknowledging a
// record no fsync covered. The batch is still logged and applies — group
// commit weakens nothing about at-least-once, only the ack is withheld.
func TestGroupCommitServerNeverAcksUnfsynced(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	dir := t.TempDir()
	s, ts, st := groupCommitServer(t, dir, time.Millisecond)

	create(t, ts, SketchConfig{Name: "u", Kind: KindUnit, Bins: 64, Seed: 7})
	// Let the create's records reach disk before breaking fsync.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := st.WaitDurable(ctx, st.LastLSN()); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Enable("wal.fail-fsync"); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/v1/sketches/u/ingest", "text/plain", strings.NewReader("x\ny\n"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest under failing fsync: status %d (%s), want 503", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "durable") {
		t.Fatalf("503 body %q does not explain the withheld ack", body)
	}
	if st.Metrics().SyncErrors.Load() == 0 {
		t.Fatal("no injected fsync failure was recorded")
	}

	// Heal the disk: the flusher retries, the log catches up, and new
	// writes ack normally again.
	faultinject.Reset()
	resp, err = http.Post(ts.URL+"/v1/sketches/u/ingest?sync=1", "text/plain", strings.NewReader("z\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest after fsyncs healed: status %d", resp.StatusCode)
	}
	shutdown(t, s, ts)

	// Both batches were logged (the 503'd one included), so recovery
	// replays all three rows.
	rebuilt, err := store.Rebuild(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sk := rebuilt.Sketches["u"]; sk == nil || sk.Rows != 3 {
		t.Fatalf("recovered rows = %v, want 3 (2 logged-unacked + 1 acked)", rebuilt.Sketches["u"])
	}
}
