package server

import (
	"sync"
	"testing"
)

// TestStripedInt64Concurrent hammers one counter from many goroutines
// and checks the stripe sum is exact — striping may spread increments
// around, but it must never lose one. Run under -race in CI.
func TestStripedInt64Concurrent(t *testing.T) {
	const (
		workers = 16
		perG    = 10000
	)
	var c stripedInt64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got, want := c.Load(), int64(workers*perG); got != want {
		t.Fatalf("striped counter lost increments: got %d, want %d", got, want)
	}
	c.Add(-3)
	if got, want := c.Load(), int64(workers*perG-3); got != want {
		t.Fatalf("after negative add: got %d, want %d", got, want)
	}
}

// TestStripedInt64ZeroAlloc pins the hot-path cost: an Add must not
// allocate (the stripe pick is pure arithmetic on a stack address).
func TestStripedInt64ZeroAlloc(t *testing.T) {
	var c stripedInt64
	if allocs := testing.AllocsPerRun(100, func() { c.Add(1) }); allocs != 0 {
		t.Fatalf("stripedInt64.Add allocates %.1f times per op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = c.Load() }); allocs != 0 {
		t.Fatalf("stripedInt64.Load allocates %.1f times per op, want 0", allocs)
	}
}
