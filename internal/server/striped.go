package server

import (
	"sync/atomic"
	"unsafe"
)

// stripedInt64 is a write-hot monotonic counter spread across
// cache-line-padded stripes so concurrent ingest workers and query
// handlers on different Ps don't ping-pong one shared line (the classic
// single-atomic bottleneck once everything else in the hot path is
// contention-free). Writers pick a stripe from their own stack address —
// stable for a goroutine's lifetime in practice, and merely a contention
// (never a correctness) matter when a stack moves — and the scrape path
// sums the stripes. The zero value is ready to use and the Add/Load
// surface matches atomic.Int64, so hot counters swap in without touching
// their call sites.
type stripedInt64 struct {
	stripes [counterStripes]paddedInt64
}

// counterStripes is the stripe fan-out: a power of two comfortably above
// typical GOMAXPROCS. Idle stripes cost only their padding (64 B each)
// and a handful of extra loads per scrape.
const counterStripes = 32

// paddedInt64 pads each stripe to its own cache line.
type paddedInt64 struct {
	v atomic.Int64
	_ [56]byte
}

// stripeIndex picks the calling goroutine's stripe by hashing a stack
// address: goroutines get distinct stacks, so concurrent writers spread
// across stripes without any runtime hooks or per-goroutine state.
func stripeIndex() int {
	var pin byte
	p := uintptr(unsafe.Pointer(&pin))
	return int((p>>6)^(p>>14)) & (counterStripes - 1)
}

// Add increments the caller's stripe.
func (c *stripedInt64) Add(d int64) {
	c.stripes[stripeIndex()].v.Add(d)
}

// Load sums the stripes. Like summing any set of independent atomics it
// is a consistent total only once writers quiesce; for monotonic metrics
// counters that is the same guarantee one atomic gave.
func (c *stripedInt64) Load() int64 {
	var t int64
	for i := range c.stripes {
		t += c.stripes[i].v.Load()
	}
	return t
}
