package sampling

import (
	"fmt"
	"sort"
)

// Coordinated samples (Brewer, Early & Joyce 1972; Cohen & Kaplan 2013 —
// both cited in the paper's introduction as the flexible-but-expensive end
// of the sketching spectrum): bottom-k sketches built over different
// datasets with the same hash seed share their randomness, which makes
// cross-dataset set operations estimable — the k smallest union hashes are
// exactly the union's bottom-k sample, and membership of those keys in each
// input sample reveals the overlap.

// Member is one retained (key, hash, count) triple exported for
// coordination.
type Member struct {
	Key   string
	Hash  uint64
	Count int64
}

// Members returns the retained items with their hashes, sorted by hash
// ascending.
func (s *StreamingBottomK) Members() []Member {
	out := make([]Member, 0, len(s.h))
	for _, e := range s.h {
		out = append(out, Member{Key: e.key, Hash: e.hash, Count: e.count})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Hash < out[j].Hash })
	return out
}

// Seed returns the hash seed, which must match across coordinated sketches.
func (s *StreamingBottomK) Seed() uint64 { return s.seed }

// K returns the sample-size parameter.
func (s *StreamingBottomK) K() int { return s.k }

// Coordinated wraps two same-seed bottom-k sketches and estimates set
// relations between their distinct-item populations.
type Coordinated struct {
	a, b *StreamingBottomK
	k    int
}

// NewCoordinated validates that the sketches share a seed and returns the
// estimator. The effective sample size is min(a.K(), b.K()).
func NewCoordinated(a, b *StreamingBottomK) (*Coordinated, error) {
	if a.Seed() != b.Seed() {
		return nil, fmt.Errorf("sampling: coordinated sketches need equal seeds (%d vs %d)", a.Seed(), b.Seed())
	}
	k := a.K()
	if b.K() < k {
		k = b.K()
	}
	return &Coordinated{a: a, b: b, k: k}, nil
}

// unionSample returns the ≤k smallest-hash distinct keys across both
// samples, with flags for membership in each side, plus the k-th hash
// (τ, or 0 when the union sample is not full).
func (c *Coordinated) unionSample() (keys []string, inA, inB []bool, tau uint64) {
	type ent struct {
		hash   uint64
		a, b   bool
		exactA bool
	}
	m := map[string]*ent{}
	for _, e := range c.a.Members() {
		m[e.Key] = &ent{hash: e.Hash, a: true}
	}
	for _, e := range c.b.Members() {
		if x, ok := m[e.Key]; ok {
			x.b = true
		} else {
			m[e.Key] = &ent{hash: e.Hash, b: true}
		}
	}
	type kv struct {
		key string
		e   *ent
	}
	all := make([]kv, 0, len(m))
	for k2, e := range m {
		all = append(all, kv{k2, e})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].e.hash < all[j].e.hash })
	n := len(all)
	full := n >= c.k
	if full {
		n = c.k
	}
	for i := 0; i < n; i++ {
		keys = append(keys, all[i].key)
		inA = append(inA, all[i].e.a)
		inB = append(inB, all[i].e.b)
	}
	if full {
		tau = all[c.k-1].e.hash
	}
	return keys, inA, inB, tau
}

// UnionDistinct estimates the number of distinct items in the union of the
// two datasets.
func (c *Coordinated) UnionDistinct() float64 {
	keys, _, _, tau := c.unionSample()
	if tau == 0 {
		return float64(len(keys)) // census
	}
	t := float64(tau) / float64(^uint64(0))
	return float64(c.k-1) / t
}

// Jaccard estimates the Jaccard similarity |A∩B| / |A∪B| of the two
// distinct-item sets: the match rate within the union's bottom-k sample.
// The estimate is exact (not just unbiased) when both populations fit in
// the samples.
//
// Caveat: membership of a union-sample key in side A is read off A's
// retained sample, which is valid because coordination guarantees any key
// with hash below the union threshold is also below each side's own
// threshold whenever that side contains the key.
func (c *Coordinated) Jaccard() float64 {
	keys, inA, inB, _ := c.unionSample()
	if len(keys) == 0 {
		return 0
	}
	match := 0
	for i := range keys {
		if inA[i] && inB[i] {
			match++
		}
	}
	return float64(match) / float64(len(keys))
}

// IntersectionDistinct estimates |A∩B| as Jaccard × UnionDistinct.
func (c *Coordinated) IntersectionDistinct() float64 {
	return c.Jaccard() * c.UnionDistinct()
}
