package sampling

import (
	"container/heap"
	"fmt"

	"repro/internal/hashx"
)

// StreamingBottomK is the bottom-k sketch of Cohen & Kaplan (2007) run
// directly on a disaggregated row stream: it retains the k distinct items
// with the smallest hash values and counts their rows exactly.
//
// Key property: the k-th smallest hash (the threshold) only decreases over
// time, so any item in the final sample has been in the sample continuously
// since its first occurrence — its counter is exact. The sample is a
// uniform k-subset of the distinct items, which is why the paper's Figure 4
// shows it losing by orders of magnitude to size-proportional designs on
// skewed data: it spends its budget on the tail.
//
// Subset sums are Horvitz–Thompson estimated with the standard bottom-k
// distinct-count machinery: D̂ = (k−1)/τ estimates the number of distinct
// items (τ = k-th smallest hash mapped to (0,1)), and each sampled item has
// inclusion probability ≈ k/D.
type StreamingBottomK struct {
	k     int
	seed  uint64
	items map[string]*skbEntry
	h     skbHeap // max-heap on hash: root is the largest retained hash
	rows  int64
}

type skbEntry struct {
	key   string
	hash  uint64
	count int64
	idx   int
}

// skbHeap is a max-heap over hash values.
type skbHeap []*skbEntry

func (h skbHeap) Len() int            { return len(h) }
func (h skbHeap) Less(i, j int) bool  { return h[i].hash > h[j].hash }
func (h skbHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].idx = i; h[j].idx = j }
func (h *skbHeap) Push(x interface{}) { e := x.(*skbEntry); e.idx = len(*h); *h = append(*h, e) }
func (h *skbHeap) Pop() interface{} {
	old := *h
	n := len(old) - 1
	e := old[n]
	old[n] = nil
	*h = old[:n]
	return e
}

// NewStreamingBottomK returns a sketch retaining k distinct items. The
// seed perturbs the hash so independent replicates draw independent
// samples.
func NewStreamingBottomK(k int, seed uint64) *StreamingBottomK {
	if k <= 1 {
		panic(fmt.Sprintf("sampling: streaming bottom-k with k = %d, want > 1", k))
	}
	return &StreamingBottomK{k: k, seed: seed, items: make(map[string]*skbEntry, k+1)}
}

func (s *StreamingBottomK) hash(key string) uint64 {
	// Inlined FNV-1a (hashx) instead of a heap-allocated fnv.New64a per
	// row; digests are identical, so samples are unchanged.
	v := hashx.Sum64a(key) ^ s.seed
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return v
}

// Update processes one row.
func (s *StreamingBottomK) Update(item string) {
	s.rows++
	if e, ok := s.items[item]; ok {
		e.count++
		return
	}
	hv := s.hash(item)
	if len(s.h) >= s.k {
		if hv >= s.h[0].hash {
			// Hash too large to ever enter. (If this item was evicted
			// earlier, its hash was already ≥ the then-threshold and
			// thresholds only shrink, so it cannot be in the final
			// sample — dropping its rows is exactly the design.)
			return
		}
		evicted := heap.Pop(&s.h).(*skbEntry)
		delete(s.items, evicted.key)
	}
	e := &skbEntry{key: item, hash: hv, count: 1}
	heap.Push(&s.h, e)
	s.items[item] = e
}

// Rows returns the number of rows processed.
func (s *StreamingBottomK) Rows() int64 { return s.rows }

// Size returns the number of retained items (≤ k).
func (s *StreamingBottomK) Size() int { return len(s.h) }

// Contains reports whether item is currently retained.
func (s *StreamingBottomK) Contains(item string) bool {
	_, ok := s.items[item]
	return ok
}

// Count returns the exact row count for a retained item (0 otherwise).
func (s *StreamingBottomK) Count(item string) int64 {
	e, ok := s.items[item]
	if !ok {
		return 0
	}
	return e.count
}

// DistinctEstimate returns the bottom-k estimator (k−1)/τ of the number of
// distinct items seen, where τ is the largest retained hash scaled to
// (0,1). While the sample is not full it returns the exact count.
func (s *StreamingBottomK) DistinctEstimate() float64 {
	if len(s.h) < s.k {
		return float64(len(s.h))
	}
	tau := float64(s.h[0].hash) / float64(^uint64(0))
	if tau <= 0 {
		return float64(s.k)
	}
	return float64(s.k-1) / tau
}

// SubsetSum estimates the total row count of items satisfying pred: the
// exact counts of sampled matching items scaled by D̂/k (inverse inclusion
// probability).
func (s *StreamingBottomK) SubsetSum(pred func(string) bool) float64 {
	var sum float64
	for _, e := range s.h {
		if pred(e.key) {
			sum += float64(e.count)
		}
	}
	if len(s.h) < s.k {
		return sum // census
	}
	return sum * s.DistinctEstimate() / float64(s.k)
}

// Sample exports the retained items with HT adjustments, interoperating
// with the aggregated-sample tooling.
func (s *StreamingBottomK) Sample() Sample {
	scale := 1.0
	if len(s.h) >= s.k {
		scale = s.DistinctEstimate() / float64(s.k)
	}
	out := make([]SampledItem, 0, len(s.h))
	for _, e := range s.h {
		out = append(out, SampledItem{
			Item:          Item{Key: e.key, Value: float64(e.count)},
			Pi:            1 / scale,
			AdjustedValue: float64(e.count) * scale,
		})
	}
	return Sample{Name: "streaming-bottom-k", Items: out}
}
