package sampling

import (
	"fmt"
	"math"
	"testing"
)

func buildCoordinated(t *testing.T, k int, seed uint64, aN, bN, overlap int) *Coordinated {
	t.Helper()
	a := NewStreamingBottomK(k, seed)
	b := NewStreamingBottomK(k, seed)
	// A holds items [0, aN); B holds [aN-overlap, aN-overlap+bN).
	for i := 0; i < aN; i++ {
		a.Update(fmt.Sprintf("item-%d", i))
	}
	for i := aN - overlap; i < aN-overlap+bN; i++ {
		b.Update(fmt.Sprintf("item-%d", i))
	}
	c, err := NewCoordinated(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCoordinatedSeedMismatch(t *testing.T) {
	a := NewStreamingBottomK(8, 1)
	b := NewStreamingBottomK(8, 2)
	if _, err := NewCoordinated(a, b); err == nil {
		t.Fatal("mismatched seeds accepted")
	}
}

func TestCoordinatedExactWhenSmall(t *testing.T) {
	// Everything fits in the samples: estimates are exact.
	c := buildCoordinated(t, 100, 7, 30, 30, 10)
	if got := c.UnionDistinct(); got != 50 {
		t.Errorf("UnionDistinct = %v, want exact 50", got)
	}
	if got := c.IntersectionDistinct(); math.Abs(got-10) > 1e-9 {
		t.Errorf("IntersectionDistinct = %v, want 10", got)
	}
	if got := c.Jaccard(); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("Jaccard = %v, want 0.2", got)
	}
}

func TestCoordinatedDisjointAndIdentical(t *testing.T) {
	dis := buildCoordinated(t, 64, 3, 20, 20, 0)
	if got := dis.Jaccard(); got != 0 {
		t.Errorf("disjoint Jaccard = %v", got)
	}
	same := buildCoordinated(t, 64, 3, 25, 25, 25)
	if got := same.Jaccard(); got != 1 {
		t.Errorf("identical Jaccard = %v", got)
	}
	if got := same.IntersectionDistinct(); got != 25 {
		t.Errorf("identical intersection = %v", got)
	}
}

func TestCoordinatedLargePopulations(t *testing.T) {
	// 8000 ∪-distinct items, 2000 shared; k=400 samples. Average over
	// seeds to beat sampling noise.
	const aN, bN, overlap = 5000, 5000, 2000
	union := float64(aN + bN - overlap)
	jac := float64(overlap) / union
	const reps = 20
	var sumU, sumJ float64
	for r := 0; r < reps; r++ {
		c := buildCoordinated(t, 400, uint64(r*2654435761+17), aN, bN, overlap)
		sumU += c.UnionDistinct()
		sumJ += c.Jaccard()
	}
	if got := sumU / reps; math.Abs(got-union) > 0.07*union {
		t.Errorf("mean UnionDistinct = %v, want ≈ %v", got, union)
	}
	if got := sumJ / reps; math.Abs(got-jac) > 0.05 {
		t.Errorf("mean Jaccard = %v, want ≈ %v", got, jac)
	}
}

func TestMembersSortedAndAccessors(t *testing.T) {
	s := NewStreamingBottomK(16, 9)
	for i := 0; i < 100; i++ {
		s.Update(fmt.Sprintf("x%d", i%40))
	}
	ms := s.Members()
	if len(ms) != 16 {
		t.Fatalf("Members = %d", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		if ms[i].Hash < ms[i-1].Hash {
			t.Fatal("Members not hash-ascending")
		}
	}
	for _, m := range ms {
		if m.Count <= 0 {
			t.Errorf("member %s count %d", m.Key, m.Count)
		}
	}
	if s.Seed() != 9 || s.K() != 16 {
		t.Error("accessors wrong")
	}
}
