package sampling

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// population builds a skewed aggregated population: value i+1 for item i.
func population(n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Key: fmt.Sprintf("i%d", i), Value: float64(i + 1)}
	}
	return items
}

func popTotal(items []Item) float64 {
	var s float64
	for _, it := range items {
		s += it.Value
	}
	return s
}

// checkUnbiased runs sampler reps times and z-tests the HT subset estimate
// against the truth.
func checkUnbiased(t *testing.T, name string, sampler func(*rand.Rand) Sample, pred func(string) bool, truth float64, reps int) {
	t.Helper()
	rng := newRng(101)
	var sum, sumsq float64
	for r := 0; r < reps; r++ {
		est, _ := sampler(rng).SubsetSum(pred)
		sum += est
		sumsq += est * est
	}
	mean := sum / float64(reps)
	varr := sumsq/float64(reps) - mean*mean
	se := math.Sqrt(varr / float64(reps))
	if se == 0 {
		se = 1e-12
	}
	if z := math.Abs(mean-truth) / se; z > 4.5 {
		t.Errorf("%s: mean %.2f vs truth %.2f, |z| = %.1f", name, mean, truth, z)
	}
}

func TestPrioritySampleSizeAndCertainty(t *testing.T) {
	items := population(50)
	rng := newRng(1)
	s := Priority(items, 10, rng)
	if len(s.Items) != 10 {
		t.Fatalf("priority sample size %d, want 10", len(s.Items))
	}
	for _, it := range s.Items {
		if it.AdjustedValue < it.Value {
			t.Errorf("adjusted %v below raw %v", it.AdjustedValue, it.Value)
		}
		if it.Pi <= 0 || it.Pi > 1 {
			t.Errorf("π = %v outside (0,1]", it.Pi)
		}
	}
}

func TestPrioritySmallPopulationExact(t *testing.T) {
	items := population(5)
	s := Priority(items, 10, newRng(2))
	if len(s.Items) != 5 {
		t.Fatalf("size %d, want all 5", len(s.Items))
	}
	if got := s.Total(); got != popTotal(items) {
		t.Errorf("Total = %v, want exact %v", got, popTotal(items))
	}
}

func TestPriorityUnbiased(t *testing.T) {
	items := population(60)
	pred := func(k string) bool { return len(k) == 3 } // i10..i59: two digits+i = len 3
	truth := ExactSubsetSum(items, pred)
	checkUnbiased(t, "priority", func(r *rand.Rand) Sample { return Priority(items, 15, r) }, pred, truth, 6000)
}

func TestPriorityDropsNonPositive(t *testing.T) {
	items := []Item{{"a", 0}, {"b", -2}, {"c", 5}}
	s := Priority(items, 2, newRng(3))
	if len(s.Items) != 1 || s.Items[0].Key != "c" {
		t.Errorf("priority kept %v, want just c", s.Items)
	}
}

func TestBottomKUnbiased(t *testing.T) {
	items := population(40)
	pred := func(k string) bool { return k == "i5" || k == "i35" }
	truth := ExactSubsetSum(items, pred)
	checkUnbiased(t, "bottom-k", func(r *rand.Rand) Sample { return BottomK(items, 10, r) }, pred, truth, 8000)
}

func TestBottomKSizeAndAdjustment(t *testing.T) {
	items := population(40)
	s := BottomK(items, 10, newRng(4))
	if len(s.Items) != 10 {
		t.Fatalf("bottom-k size %d, want 10", len(s.Items))
	}
	for _, it := range s.Items {
		if it.Pi != 0.25 {
			t.Errorf("π = %v, want 0.25", it.Pi)
		}
		if math.Abs(it.AdjustedValue-4*it.Value) > 1e-12 {
			t.Errorf("adjusted %v, want %v", it.AdjustedValue, 4*it.Value)
		}
	}
	// Distinctness.
	seen := map[string]bool{}
	for _, it := range s.Items {
		if seen[it.Key] {
			t.Fatalf("duplicate sampled key %s", it.Key)
		}
		seen[it.Key] = true
	}
}

func TestBottomKSmallPopulation(t *testing.T) {
	items := population(3)
	s := BottomK(items, 10, newRng(4))
	if len(s.Items) != 3 || s.Total() != popTotal(items) {
		t.Errorf("small-population bottom-k wrong: %v", s.Items)
	}
}

func TestPoissonPPSExpectedSize(t *testing.T) {
	items := population(100)
	rng := newRng(5)
	const reps = 3000
	const k = 20
	var size int
	for r := 0; r < reps; r++ {
		size += len(PoissonPPS(items, k, rng).Items)
	}
	mean := float64(size) / reps
	if math.Abs(mean-k) > 0.5 {
		t.Errorf("Poisson PPS mean size %.2f, want ≈ %d", mean, k)
	}
}

func TestPoissonPPSUnbiased(t *testing.T) {
	items := population(50)
	pred := func(k string) bool { return k < "i3" } // lexicographic: i0,i1,i2,i10..i29
	truth := ExactSubsetSum(items, pred)
	checkUnbiased(t, "poisson", func(r *rand.Rand) Sample { return PoissonPPS(items, 12, r) }, pred, truth, 8000)
}

func TestPivotalExactSize(t *testing.T) {
	items := population(80)
	rng := newRng(6)
	for r := 0; r < 200; r++ {
		s := Pivotal(items, 15, rng)
		if len(s.Items) != 15 {
			t.Fatalf("pivotal size %d, want exactly 15", len(s.Items))
		}
	}
}

func TestPivotalUnbiased(t *testing.T) {
	items := population(50)
	pred := func(k string) bool { return k == "i2" || k == "i30" || k == "i49" }
	truth := ExactSubsetSum(items, pred)
	checkUnbiased(t, "pivotal", func(r *rand.Rand) Sample { return Pivotal(items, 12, r) }, pred, truth, 8000)
}

func TestSystematicSizeAndUnbiasedness(t *testing.T) {
	items := population(50)
	rng := newRng(7)
	for r := 0; r < 100; r++ {
		s := Systematic(items, 10, rng)
		if got := len(s.Items); got != 10 {
			t.Fatalf("systematic size %d, want 10", got)
		}
	}
	pred := func(k string) bool { return k >= "i4" } // i4..i9, i40..i49
	truth := ExactSubsetSum(items, pred)
	checkUnbiased(t, "systematic", func(r *rand.Rand) Sample { return Systematic(items, 10, r) }, pred, truth, 8000)
}

func TestProbabilitiesSumAndBounds(t *testing.T) {
	items := population(30)
	for _, k := range []int{1, 5, 15, 29, 30, 50} {
		pi := Probabilities(items, k)
		var sum float64
		for _, p := range pi {
			if p < 0 || p > 1 {
				t.Fatalf("k=%d: π = %v outside [0,1]", k, p)
			}
			sum += p
		}
		want := float64(k)
		if k >= len(items) {
			want = float64(len(items))
		}
		if math.Abs(sum-want) > 1e-9 {
			t.Errorf("k=%d: Σπ = %v, want %v", k, sum, want)
		}
	}
}

func TestProbabilitiesMonotoneInValue(t *testing.T) {
	items := population(30)
	pi := Probabilities(items, 10)
	for i := 1; i < len(pi); i++ {
		if pi[i] < pi[i-1]-1e-12 {
			t.Fatalf("π not monotone in value at %d: %v < %v", i, pi[i], pi[i-1])
		}
	}
}

func TestProbabilitiesZeroValues(t *testing.T) {
	items := []Item{{"a", 0}, {"b", 2}, {"c", 0}, {"d", 2}}
	pi := Probabilities(items, 1)
	if pi[0] != 0 || pi[2] != 0 {
		t.Errorf("zero-value items got π > 0: %v", pi)
	}
	if math.Abs(pi[1]-0.5) > 1e-12 || math.Abs(pi[3]-0.5) > 1e-12 {
		t.Errorf("π = %v, want 0.5 for b and d", pi)
	}
}

func TestPPSVariance(t *testing.T) {
	items := population(20)
	all := func(string) bool { return true }
	// With k ≥ n the sample is a census: variance 0.
	if v := PPSVariance(items, 100, all); v != 0 {
		t.Errorf("census variance = %v, want 0", v)
	}
	v := PPSVariance(items, 5, all)
	if v <= 0 {
		t.Errorf("variance = %v, want > 0", v)
	}
	// Subset variance is at most total variance.
	sub := PPSVariance(items, 5, func(k string) bool { return k == "i0" })
	if sub > v {
		t.Errorf("subset variance %v exceeds total %v", sub, v)
	}
}

func TestSampleHelpers(t *testing.T) {
	s := Sample{Items: []SampledItem{
		{Item: Item{Key: "a", Value: 2}, Pi: 0.5, AdjustedValue: 4},
		{Item: Item{Key: "b", Value: 3}, Pi: 1, AdjustedValue: 3},
	}}
	if got := s.Total(); got != 7 {
		t.Errorf("Total = %v, want 7", got)
	}
	est, n := s.SubsetSum(func(k string) bool { return k == "a" })
	if est != 4 || n != 1 {
		t.Errorf("SubsetSum = %v,%d, want 4,1", est, n)
	}
	if !s.Contains("a") || s.Contains("z") {
		t.Error("Contains wrong")
	}
}

func TestExactSubsetSum(t *testing.T) {
	items := population(10)
	got := ExactSubsetSum(items, func(k string) bool { return k == "i0" || k == "i9" })
	if got != 11 {
		t.Errorf("ExactSubsetSum = %v, want 11", got)
	}
}

func TestSamplersPanicOnBadK(t *testing.T) {
	items := population(5)
	rng := newRng(1)
	for name, fn := range map[string]func(){
		"priority": func() { Priority(items, 0, rng) },
		"bottomk":  func() { BottomK(items, 0, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: k=0 did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestPriorityUniformTotalRelativeError reproduces the paper's §7 remark:
// "A priority sample of size 100 when all items have the same count will
// have relative error of ≈ 10% when estimating the total count." Fixed-size
// PPS designs (pivotal) estimate the total exactly in that setting.
func TestPriorityUniformTotalRelativeError(t *testing.T) {
	n := 1000
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Key: fmt.Sprintf("i%d", i), Value: 1}
	}
	rng := newRng(55)
	const reps = 2000
	var sum, sumsq float64
	for r := 0; r < reps; r++ {
		tot := Priority(items, 100, rng).Total()
		sum += tot
		sumsq += tot * tot
	}
	mean := sum / reps
	sd := math.Sqrt(sumsq/reps - mean*mean)
	rel := sd / float64(n)
	if rel < 0.07 || rel > 0.13 {
		t.Errorf("priority uniform-total relative error %.3f, paper says ≈ 0.10", rel)
	}
	// Pivotal PPS on equal values is exact for the total.
	for r := 0; r < 50; r++ {
		if tot := Pivotal(items, 100, rng).Total(); math.Abs(tot-float64(n)) > 1e-6 {
			t.Fatalf("pivotal uniform total %v, want exactly %d", tot, n)
		}
	}
}

// TestPPSBeatsUniformOnSkew verifies the headline ordering on skewed data:
// both priority and pivotal PPS beat uniform item sampling, and pivotal
// (fixed-size, certainty-aware) dominates on a subset containing all the
// large items because those are included with probability 1.
func TestPPSBeatsUniformOnSkew(t *testing.T) {
	n := 200
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Key: fmt.Sprintf("i%d", i), Value: math.Pow(float64(i+1), 2)}
	}
	pred := func(k string) bool { return len(k)%2 == 0 } // i0..i9 and i100..i199
	truth := ExactSubsetSum(items, pred)
	rng := newRng(55)
	mse := func(sampler func() Sample) float64 {
		const reps = 1500
		var sum float64
		for r := 0; r < reps; r++ {
			est, _ := sampler().SubsetSum(pred)
			d := est - truth
			sum += d * d
		}
		return sum / reps
	}
	msePriority := mse(func() Sample { return Priority(items, 30, rng) })
	msePivotal := mse(func() Sample { return Pivotal(items, 30, rng) })
	mseUniform := mse(func() Sample { return BottomK(items, 30, rng) })
	if msePriority > mseUniform {
		t.Errorf("priority (%v) worse than uniform (%v) on skewed data", msePriority, mseUniform)
	}
	if msePivotal > msePriority {
		t.Errorf("pivotal (%v) worse than priority (%v) on a certainty-dominated subset", msePivotal, msePriority)
	}
}
