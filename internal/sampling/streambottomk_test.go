package sampling

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func TestStreamingBottomKValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=1 did not panic")
		}
	}()
	NewStreamingBottomK(1, 0)
}

func TestStreamingBottomKCensusWhenSmall(t *testing.T) {
	s := NewStreamingBottomK(10, 1)
	for i := 0; i < 5; i++ {
		for j := 0; j <= i; j++ {
			s.Update(fmt.Sprintf("i%d", i))
		}
	}
	if s.Size() != 5 {
		t.Fatalf("Size = %d", s.Size())
	}
	if s.Rows() != 15 {
		t.Fatalf("Rows = %d", s.Rows())
	}
	for i := 0; i < 5; i++ {
		if got := s.Count(fmt.Sprintf("i%d", i)); got != int64(i+1) {
			t.Errorf("Count(i%d) = %d, want %d", i, got, i+1)
		}
	}
	if got := s.DistinctEstimate(); got != 5 {
		t.Errorf("DistinctEstimate = %v, want exact 5", got)
	}
	if got := s.SubsetSum(func(string) bool { return true }); got != 15 {
		t.Errorf("census SubsetSum = %v, want 15", got)
	}
}

func TestStreamingBottomKExactCountsForSurvivors(t *testing.T) {
	s := NewStreamingBottomK(50, 7)
	truth := map[string]int64{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50000; i++ {
		item := fmt.Sprintf("i%d", rng.Intn(2000))
		s.Update(item)
		truth[item]++
	}
	if s.Size() != 50 {
		t.Fatalf("Size = %d", s.Size())
	}
	for _, e := range s.Sample().Items {
		if int64(e.Value) != truth[e.Key] {
			t.Errorf("survivor %s count %v, truth %d (must be exact)", e.Key, e.Value, truth[e.Key])
		}
	}
	if !s.Contains(s.Sample().Items[0].Key) || s.Contains("never-seen") {
		t.Error("Contains wrong")
	}
}

func TestStreamingBottomKDistinctEstimate(t *testing.T) {
	const distinct = 5000
	const reps = 40
	var sum float64
	for r := 0; r < reps; r++ {
		s := NewStreamingBottomK(200, uint64(r*2654435761+1))
		for i := 0; i < distinct; i++ {
			s.Update(fmt.Sprintf("r%d-i%d", r, i))
		}
		sum += s.DistinctEstimate()
	}
	mean := sum / reps
	if math.Abs(mean-distinct) > 0.1*distinct {
		t.Errorf("mean distinct estimate %v, want ≈ %d", mean, distinct)
	}
}

// TestStreamingBottomKSubsetSumApproxUnbiased: the HT estimator over
// replicated hash seeds should center on the truth.
func TestStreamingBottomKSubsetSumApproxUnbiased(t *testing.T) {
	// 1000 items, counts i%20+1; subset = items with index divisible by 3.
	var truthSubset float64
	var rows []string
	for i := 0; i < 1000; i++ {
		n := i%20 + 1
		for j := 0; j < n; j++ {
			rows = append(rows, fmt.Sprintf("i%d", i))
		}
		if i%3 == 0 {
			truthSubset += float64(n)
		}
	}
	pred := func(s string) bool {
		var n int
		fmt.Sscanf(s, "i%d", &n)
		return n%3 == 0
	}
	const reps = 300
	var sum, sumsq float64
	for r := 0; r < reps; r++ {
		s := NewStreamingBottomK(100, uint64(r)*0x9e3779b97f4a7c15+11)
		for _, row := range rows {
			s.Update(row)
		}
		e := s.SubsetSum(pred)
		sum += e
		sumsq += e * e
	}
	mean := sum / reps
	sd := math.Sqrt(sumsq/reps - mean*mean)
	se := sd / math.Sqrt(reps)
	// The estimator has mild ratio bias from D̂; allow 5 SE plus 3%.
	if math.Abs(mean-truthSubset) > 5*se+0.03*truthSubset {
		t.Errorf("subset mean %v vs truth %v (se %v)", mean, truthSubset, se)
	}
}

// TestStreamingBottomKLosesToSketchOnSkew reproduces the paper's Figure-4
// ordering at unit-test scale: uniform item sampling has far higher error
// than PPS-like allocation when the data is skewed and the subset contains
// heavy items.
func TestStreamingBottomKLosesToSketchOnSkew(t *testing.T) {
	// Skewed counts: item i has count (i/100+1)³.
	var rows []string
	var truth float64
	pred := func(s string) bool {
		var n int
		fmt.Sscanf(s, "i%d", &n)
		return n >= 900 // the heavy tail-end items
	}
	for i := 0; i < 1000; i++ {
		c := (i/100 + 1) * (i/100 + 1) * (i/100 + 1)
		for j := 0; j < c; j++ {
			rows = append(rows, fmt.Sprintf("i%d", i))
		}
		if i >= 900 {
			truth += float64(c)
		}
	}
	const reps = 100
	var mseBK float64
	for r := 0; r < reps; r++ {
		s := NewStreamingBottomK(100, uint64(r)*0x2545f4914f6cdd1d+3)
		for _, row := range rows {
			s.Update(row)
		}
		d := s.SubsetSum(pred) - truth
		mseBK += d * d
	}
	mseBK /= reps
	relBK := math.Sqrt(mseBK) / truth
	// The subset holds 100 of 1000 items but ~58% of the mass; uniform
	// sampling's error should be substantial (>10% relative), which is
	// the qualitative gap Figure 4 shows against USS's sub-percent error
	// at this mass fraction.
	if relBK < 0.05 {
		t.Errorf("bottom-k suspiciously accurate on skew: rel rmse %v", relBK)
	}
}
