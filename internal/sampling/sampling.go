// Package sampling implements the pre-aggregated subset-sum baselines the
// paper compares against (§5.1, §7): priority sampling (Duffield, Lund &
// Thorup 2007), bottom-k uniform item sampling (Cohen & Kaplan 2007),
// Poisson probability-proportional-to-size sampling with thresholded
// inclusion probabilities, systematic PPS, and the fixed-size splitting
// (pivotal) PPS design of Deville & Tillé (1998), all queried through the
// Horvitz–Thompson estimator.
//
// These samplers consume pre-aggregated data — (item, value) pairs with one
// entry per unit of analysis — which is exactly the expensive step the
// disaggregated sketches avoid. They serve as the accuracy gold standard in
// the experiments.
package sampling

import (
	"fmt"
	"math/rand"
	"sort"
)

// Item is one pre-aggregated unit: a key and its total value (e.g. a user
// and their click count).
type Item struct {
	Key   string
	Value float64
}

// SampledItem is an item retained by a sampler together with its
// Horvitz–Thompson adjusted value Value/π. Subset sums are computed by
// summing AdjustedValue over sampled items matching the filter.
type SampledItem struct {
	Item
	// Pi is the (pseudo-)inclusion probability used in the adjustment.
	Pi float64
	// AdjustedValue is Value / Pi.
	AdjustedValue float64
}

// Sample is the result of running a sampler: a set of retained items ready
// for Horvitz–Thompson estimation.
type Sample struct {
	// Name identifies the design (for reports).
	Name string
	// Items are the retained units.
	Items []SampledItem
}

// SubsetSum returns the HT estimate of Σ value over items whose key
// satisfies pred, along with the number of sampled items matching.
func (s Sample) SubsetSum(pred func(key string) bool) (est float64, matched int) {
	for _, it := range s.Items {
		if pred(it.Key) {
			est += it.AdjustedValue
			matched++
		}
	}
	return est, matched
}

// Total returns the HT estimate of the population total.
func (s Sample) Total() float64 {
	var t float64
	for _, it := range s.Items {
		t += it.AdjustedValue
	}
	return t
}

// Contains reports whether key was retained.
func (s Sample) Contains(key string) bool {
	for _, it := range s.Items {
		if it.Key == key {
			return true
		}
	}
	return false
}

// Priority draws a priority sample of size k from the aggregated items:
// each item gets priority value/u with u ~ Uniform(0,1); the k largest
// priorities are kept and every kept item's value is adjusted to
// max(value, τ) where τ is the (k+1)-th largest priority. (Duffield et al.
// state it with priorities u/value and smallest-k; the two are equivalent —
// we keep the k items with the largest value/u.)
func Priority(items []Item, k int, rng *rand.Rand) Sample {
	if k <= 0 {
		panic(fmt.Sprintf("sampling: priority sample of size %d", k))
	}
	type prio struct {
		item Item
		q    float64
	}
	ps := make([]prio, 0, len(items))
	for _, it := range items {
		if it.Value <= 0 {
			continue
		}
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		ps = append(ps, prio{item: it, q: it.Value / u})
	}
	if len(ps) <= k {
		// Everything fits: the sample is exact.
		out := make([]SampledItem, len(ps))
		for i, p := range ps {
			out[i] = SampledItem{Item: p.item, Pi: 1, AdjustedValue: p.item.Value}
		}
		return Sample{Name: "priority", Items: out}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].q > ps[j].q })
	tau := ps[k].q
	out := make([]SampledItem, k)
	for i, p := range ps[:k] {
		v := p.item.Value
		adj := v
		if tau > adj {
			adj = tau
		}
		pi := v / tau
		if pi > 1 {
			pi = 1
		}
		out[i] = SampledItem{Item: p.item, Pi: pi, AdjustedValue: adj}
	}
	return Sample{Name: "priority", Items: out}
}

// BottomK draws a uniform without-replacement sample of k items (the
// bottom-k sketch: keep the k smallest hash/random tags, which is a uniform
// k-subset) and HT-adjusts with the common inclusion probability k/n.
func BottomK(items []Item, k int, rng *rand.Rand) Sample {
	if k <= 0 {
		panic(fmt.Sprintf("sampling: bottom-k sample of size %d", k))
	}
	n := len(items)
	if n <= k {
		out := make([]SampledItem, n)
		for i, it := range items {
			out[i] = SampledItem{Item: it, Pi: 1, AdjustedValue: it.Value}
		}
		return Sample{Name: "bottom-k", Items: out}
	}
	// Partial Fisher–Yates: choose k distinct indices uniformly.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	pi := float64(k) / float64(n)
	out := make([]SampledItem, k)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
		it := items[idx[i]]
		out[i] = SampledItem{Item: it, Pi: pi, AdjustedValue: it.Value / pi}
	}
	return Sample{Name: "bottom-k", Items: out}
}

// PoissonPPS draws a Poisson sample with inclusion probabilities
// πᵢ = min(1, α·valueᵢ) where α solves Σπᵢ = k in expectation. Sample size
// is random with mean k.
func PoissonPPS(items []Item, k int, rng *rand.Rand) Sample {
	pi := Probabilities(items, k)
	var out []SampledItem
	for i, it := range items {
		p := pi[i]
		if p <= 0 {
			continue
		}
		if p >= 1 || rng.Float64() < p {
			out = append(out, SampledItem{Item: it, Pi: p, AdjustedValue: it.Value / p})
		}
	}
	return Sample{Name: "poisson-pps", Items: out}
}

// Pivotal draws a fixed-size-k PPS sample using the splitting method of
// Deville & Tillé in its pivotal form: fractional inclusion probabilities
// are resolved pairwise until each is 0 or 1. Exactly k items are selected
// (up to the integrality of Σπ).
func Pivotal(items []Item, k int, rng *rand.Rand) Sample {
	pi := Probabilities(items, k)
	var out []SampledItem
	// cur is the evolving pivotal process probability; orig is the unit's
	// original inclusion probability, which is its final selection
	// probability and hence the Horvitz–Thompson divisor.
	type frac struct {
		item      Item
		cur, orig float64
	}
	var pool []frac
	for i, it := range items {
		switch {
		case pi[i] >= 1:
			out = append(out, SampledItem{Item: it, Pi: 1, AdjustedValue: it.Value})
		case pi[i] > 0:
			pool = append(pool, frac{item: it, cur: pi[i], orig: pi[i]})
		}
	}
	for len(pool) >= 2 {
		a, b := pool[len(pool)-1], pool[len(pool)-2]
		pool = pool[:len(pool)-2]
		s := a.cur + b.cur
		if s < 1 {
			if rng.Float64()*s < a.cur {
				a.cur = s
				pool = append(pool, a)
			} else {
				b.cur = s
				pool = append(pool, b)
			}
		} else {
			if rng.Float64()*(2-s) < 1-a.cur {
				out = append(out, SampledItem{Item: b.item, Pi: b.orig, AdjustedValue: b.item.Value / b.orig})
				a.cur = s - 1
				pool = append(pool, a)
			} else {
				out = append(out, SampledItem{Item: a.item, Pi: a.orig, AdjustedValue: a.item.Value / a.orig})
				b.cur = s - 1
				pool = append(pool, b)
			}
		}
	}
	if len(pool) == 1 && rng.Float64() < pool[0].cur {
		f := pool[0]
		out = append(out, SampledItem{Item: f.item, Pi: f.orig, AdjustedValue: f.item.Value / f.orig})
	}
	return Sample{Name: "pivotal-pps", Items: out}
}

// Systematic draws a fixed-size-k PPS sample by systematic sampling: lay
// the πᵢ along a line in a random order and pick points at unit spacing
// from a uniform start. Exactly k items (up to integrality) are selected.
func Systematic(items []Item, k int, rng *rand.Rand) Sample {
	pi := Probabilities(items, k)
	order := rng.Perm(len(items))
	var out []SampledItem
	var cum float64
	next := rng.Float64()
	for _, i := range order {
		p := pi[i]
		if p <= 0 {
			continue
		}
		lo := cum
		cum += p
		// Select once for every integer+u point inside [lo, cum); since
		// p ≤ 1, at most one point lands inside.
		if next >= lo && next < cum {
			it := items[i]
			out = append(out, SampledItem{Item: it, Pi: p, AdjustedValue: it.Value / p})
			next++
		}
	}
	return Sample{Name: "systematic-pps", Items: out}
}

// Probabilities returns thresholded PPS inclusion probabilities
// πᵢ = min(1, α·valueᵢ) with α solving Σπᵢ = min(k, #positive items).
func Probabilities(items []Item, k int) []float64 {
	values := make([]float64, len(items))
	for i, it := range items {
		values[i] = it.Value
	}
	return probabilitiesFromValues(values, k)
}

func probabilitiesFromValues(values []float64, k int) []float64 {
	n := len(values)
	pi := make([]float64, n)
	positive := 0
	for _, v := range values {
		if v > 0 {
			positive++
		}
	}
	if k >= positive {
		for i, v := range values {
			if v > 0 {
				pi[i] = 1
			}
		}
		return pi
	}
	idx := make([]int, 0, positive)
	for i, v := range values {
		if v > 0 {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool { return values[idx[a]] > values[idx[b]] })
	var tail float64
	for _, i := range idx {
		tail += values[i]
	}
	certain := 0
	for certain < k {
		alpha := (float64(k) - float64(certain)) / tail
		if alpha*values[idx[certain]] <= 1 {
			break
		}
		tail -= values[idx[certain]]
		certain++
	}
	alpha := (float64(k) - float64(certain)) / tail
	for j, i := range idx {
		if j < certain {
			pi[i] = 1
		} else {
			p := alpha * values[i]
			if p > 1 {
				p = 1
			}
			pi[i] = p
		}
	}
	return pi
}

// PPSVariance returns the Poisson-PPS variance upper bound of equation 1
// for the subset of items matching pred: Σ_{i∈S} (value/π)·value·(1−π).
// It is the benchmark the paper compares the sketch's variance estimate
// against (Figure 9, right panel).
func PPSVariance(items []Item, k int, pred func(string) bool) float64 {
	pi := Probabilities(items, k)
	var v float64
	for i, it := range items {
		if pi[i] > 0 && pi[i] < 1 && pred(it.Key) {
			v += it.Value * it.Value * (1 - pi[i]) / pi[i]
		}
	}
	return v
}

// ExactSubsetSum returns the true Σ value over items matching pred.
func ExactSubsetSum(items []Item, pred func(string) bool) float64 {
	var s float64
	for _, it := range items {
		if pred(it.Key) {
			s += it.Value
		}
	}
	return s
}
