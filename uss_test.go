package uss_test

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	uss "repro"
)

func TestQuickstartFlow(t *testing.T) {
	sk := uss.New(64, uss.WithSeed(42))
	for i := 0; i < 10000; i++ {
		sk.Update(fmt.Sprintf("user-%d", i%500))
	}
	if sk.Rows() != 10000 || sk.Total() != 10000 {
		t.Fatalf("rows/total = %d/%v", sk.Rows(), sk.Total())
	}
	if sk.Size() != sk.Capacity() || sk.Capacity() != 64 {
		t.Fatalf("size/capacity = %d/%d", sk.Size(), sk.Capacity())
	}
	est := sk.SubsetSum(func(u string) bool { return strings.HasSuffix(u, "7") })
	if est.Value <= 0 {
		t.Fatal("subset estimate not positive")
	}
	lo, hi := est.ConfidenceInterval(0.95)
	if lo > est.Value || hi < est.Value || lo < 0 {
		t.Fatalf("CI [%v,%v] does not bracket %v", lo, hi, est.Value)
	}
	if sk.MinCount() <= 0 {
		t.Fatal("MinCount = 0 on saturated sketch")
	}
	top := sk.TopK(5)
	if len(top) != 5 {
		t.Fatalf("TopK(5) = %d bins", len(top))
	}
	if sk.Deterministic() {
		t.Fatal("default sketch should be unbiased")
	}
}

func TestDeterministicOption(t *testing.T) {
	sk := uss.New(4, uss.WithDeterministic(), uss.WithSeed(1))
	for i := 0; i < 100; i++ {
		sk.Update(fmt.Sprintf("i%d", i))
	}
	if !sk.Deterministic() {
		t.Fatal("WithDeterministic not applied")
	}
	// Always-replace: the last item is always tracked.
	if !sk.Contains("i99") {
		t.Fatal("deterministic sketch must contain the most recent item")
	}
	lo, hi := sk.Bounds("i99")
	if lo < 0 || hi < lo {
		t.Fatalf("Bounds = [%v,%v]", lo, hi)
	}
}

func TestWithRand(t *testing.T) {
	r1 := rand.New(rand.NewSource(9))
	r2 := rand.New(rand.NewSource(9))
	a := uss.New(8, uss.WithRand(r1))
	b := uss.New(8, uss.WithRand(r2))
	for i := 0; i < 2000; i++ {
		item := fmt.Sprintf("i%d", i%100)
		a.Update(item)
		b.Update(item)
	}
	ba, bb := a.Bins(), b.Bins()
	if len(ba) != len(bb) {
		t.Fatal("same seed produced different sketch sizes")
	}
	for i := range ba {
		if ba[i] != bb[i] {
			t.Fatalf("same seed diverged at bin %d: %v vs %v", i, ba[i], bb[i])
		}
	}
}

func TestSeededDeterminism(t *testing.T) {
	build := func() []uss.Bin {
		sk := uss.New(16, uss.WithSeed(77))
		for i := 0; i < 5000; i++ {
			sk.Update(fmt.Sprintf("k%d", (i*7)%300))
		}
		return sk.Bins()
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("WithSeed not deterministic")
		}
	}
}

func TestEstimateWithSEAndFrequentItems(t *testing.T) {
	sk := uss.New(8, uss.WithSeed(5))
	for i := 0; i < 900; i++ {
		sk.Update("hot")
	}
	for i := 0; i < 100; i++ {
		sk.Update(fmt.Sprintf("cold%d", i))
	}
	e := sk.EstimateWithSE("hot")
	if e.Value < 850 {
		t.Fatalf("hot estimate %v", e.Value)
	}
	fi := sk.FrequentItems(0.5)
	if len(fi) != 1 || fi[0].Item != "hot" {
		t.Fatalf("FrequentItems = %v", fi)
	}
	if got := sk.Estimate("never"); got != 0 {
		t.Fatalf("Estimate(never) = %v", got)
	}
	if sk.Contains("never") {
		t.Fatal("Contains(never)")
	}
}

func TestWeightedSketchFlow(t *testing.T) {
	sk := uss.NewWeighted(32, uss.WithSeed(3))
	var want float64
	for i := 0; i < 2000; i++ {
		w := 0.5 + float64(i%10)
		sk.Update(fmt.Sprintf("flow-%d", i%100), w)
		want += w
	}
	if math.Abs(sk.Total()-want) > 1e-6 {
		t.Fatalf("Total = %v, want %v", sk.Total(), want)
	}
	if sk.Size() != 32 || sk.Capacity() != 32 {
		t.Fatalf("size/capacity = %d/%d", sk.Size(), sk.Capacity())
	}
	if sk.MinCount() <= 0 {
		t.Fatal("MinCount = 0 on saturated weighted sketch")
	}
	est := sk.SubsetSum(func(s string) bool { return strings.HasPrefix(s, "flow-1") })
	if est.Value <= 0 {
		t.Fatal("weighted subset estimate not positive")
	}
	if !sk.UpdateSigned("ghost", -1) == true {
		// UpdateSigned returns false for negative update on untracked.
	}
	if sk.UpdateSigned("ghost-2", -5) {
		t.Fatal("negative update on untracked item accepted")
	}
	if len(sk.Bins()) != 32 {
		t.Fatal("Bins length")
	}
}

func TestDecayedSketchFlow(t *testing.T) {
	sk := uss.NewDecayed(16, 0.1, uss.WithSeed(4))
	for i := 0; i < 100; i++ {
		sk.Update("old", float64(i)*0.1, 1)
	}
	for i := 0; i < 20; i++ {
		sk.Update("new", 100+float64(i)*0.1, 1)
	}
	if sk.Estimate("new") <= sk.Estimate("old") {
		t.Fatalf("decay inverted: new=%v old=%v", sk.Estimate("new"), sk.Estimate("old"))
	}
	if sk.Total() <= 0 || sk.Size() != 2 {
		t.Fatalf("total/size = %v/%d", sk.Total(), sk.Size())
	}
	e := sk.SubsetSum(func(s string) bool { return s == "new" })
	if e.Value <= 0 {
		t.Fatal("decayed subset sum not positive")
	}
	if len(sk.Bins()) != 2 {
		t.Fatal("Bins length")
	}
}

func TestMergeShards(t *testing.T) {
	shards := make([]*uss.Sketch, 4)
	truth := map[string]float64{}
	for s := range shards {
		shards[s] = uss.New(32, uss.WithSeed(int64(s+1)))
		for i := 0; i < 4000; i++ {
			item := fmt.Sprintf("item-%d", (i+s*13)%200)
			shards[s].Update(item)
			truth[item]++
		}
	}
	merged := uss.Merge(32, uss.Pairwise, shards...)
	if merged.Size() > 32 {
		t.Fatalf("merged size %d", merged.Size())
	}
	var wantTotal float64
	for _, c := range truth {
		wantTotal += c
	}
	if math.Abs(merged.Total()-wantTotal) > 1e-6 {
		t.Fatalf("merged total %v, want %v", merged.Total(), wantTotal)
	}
	// All reductions accept the same inputs.
	for _, red := range []uss.Reduction{uss.Pairwise, uss.Pivotal, uss.MisraGries} {
		m := uss.Merge(32, red, shards...)
		if m.Size() > 32 {
			t.Fatalf("reduction %v overflowed: %d", red, m.Size())
		}
	}
}

func TestMergeWeightedAndBins(t *testing.T) {
	a := uss.NewWeighted(8, uss.WithSeed(1))
	b := uss.NewWeighted(8, uss.WithSeed(2))
	a.Update("x", 5)
	b.Update("x", 3)
	b.Update("y", 1)
	m := uss.MergeWeighted(8, uss.Pairwise, a, b)
	if got := m.Estimate("x"); got != 8 {
		t.Fatalf("merged x = %v", got)
	}
	bins := uss.MergeBins(1, uss.Pairwise, a.Bins(), b.Bins())
	if len(bins) != 1 {
		t.Fatalf("MergeBins(1) kept %d bins", len(bins))
	}
	if bins[0].Count != 9 {
		t.Fatalf("MergeBins total %v, want 9", bins[0].Count)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	sk := uss.New(16, uss.WithSeed(8))
	for i := 0; i < 3000; i++ {
		sk.Update(fmt.Sprintf("i%d", i%90))
	}
	blob, err := sk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back uss.Sketch
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if back.Rows() != sk.Rows() || back.Size() != sk.Size() || back.Capacity() != sk.Capacity() {
		t.Fatalf("restored rows/size/cap = %d/%d/%d", back.Rows(), back.Size(), back.Capacity())
	}
	for _, b := range sk.Bins() {
		if got := back.Estimate(b.Item); got != b.Count {
			t.Fatalf("restored Estimate(%s) = %v, want %v", b.Item, got, b.Count)
		}
	}
	if back.Deterministic() != sk.Deterministic() {
		t.Fatal("mode lost in round trip")
	}
	// Restored sketch accepts updates.
	back.Update("post-restore")
	if back.Rows() != sk.Rows()+1 {
		t.Fatal("restored sketch rejects updates")
	}
}

func TestCodecDeterministicMode(t *testing.T) {
	sk := uss.New(4, uss.WithDeterministic(), uss.WithSeed(1))
	sk.Update("a")
	blob, err := sk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back uss.Sketch
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if !back.Deterministic() {
		t.Fatal("deterministic flag lost")
	}
}

func TestCodecWeighted(t *testing.T) {
	sk := uss.NewWeighted(8, uss.WithSeed(9))
	sk.Update("a", 2.5)
	sk.Update("b", 1.25)
	blob, err := sk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back uss.WeightedSketch
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if got := back.Estimate("a"); got != 2.5 {
		t.Fatalf("restored a = %v", got)
	}
	if math.Abs(back.Total()-3.75) > 1e-9 {
		t.Fatalf("restored total = %v", back.Total())
	}
	// A unit snapshot loads into a WeightedSketch too.
	unit := uss.New(4, uss.WithSeed(2))
	unit.Update("x")
	ub, _ := unit.MarshalBinary()
	var wback uss.WeightedSketch
	if err := wback.UnmarshalBinary(ub); err != nil {
		t.Fatal(err)
	}
	if wback.Estimate("x") != 1 {
		t.Fatal("unit snapshot did not load into weighted sketch")
	}
	// But a weighted snapshot must not load into a unit Sketch.
	var sback uss.Sketch
	if err := sback.UnmarshalBinary(blob); err == nil {
		t.Fatal("weighted snapshot loaded into unit sketch")
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	var sk uss.Sketch
	if err := sk.UnmarshalBinary([]byte("not a sketch")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestMergeEqualsSingleSketchDistribution verifies the headline merge
// property end to end through the public API: sharding a stream across 4
// sketches and merging gives subset estimates centered on the same truth as
// one big sketch.
func TestMergeEqualsSingleSketchDistribution(t *testing.T) {
	var rows []string
	truth := map[string]float64{}
	for i := 0; i < 150; i++ {
		item := fmt.Sprintf("item-%d", i)
		for j := 0; j <= i%20; j++ {
			rows = append(rows, item)
			truth[item]++
		}
	}
	pred := func(s string) bool { return strings.HasSuffix(s, "7") }
	var want float64
	for k, c := range truth {
		if pred(k) {
			want += c
		}
	}
	rng := rand.New(rand.NewSource(44))
	const reps = 1200
	var sumMerged, sumSingle float64
	for r := 0; r < reps; r++ {
		perm := rng.Perm(len(rows))
		single := uss.New(16, uss.WithRand(rng))
		shards := make([]*uss.Sketch, 4)
		for s := range shards {
			shards[s] = uss.New(16, uss.WithRand(rng))
		}
		for i, idx := range perm {
			single.Update(rows[idx])
			shards[i%4].Update(rows[idx])
		}
		sumSingle += single.SubsetSum(pred).Value
		sumMerged += uss.Merge(16, uss.Pairwise, shards...).SubsetSum(pred).Value
	}
	meanS, meanM := sumSingle/reps, sumMerged/reps
	if math.Abs(meanS-want) > 0.15*want {
		t.Errorf("single-sketch mean %v vs truth %v", meanS, want)
	}
	if math.Abs(meanM-want) > 0.15*want {
		t.Errorf("merged mean %v vs truth %v", meanM, want)
	}
}
