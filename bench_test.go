// Benchmarks: one per paper figure (running the corresponding experiment
// driver at reduced scale — `go run ./cmd/ussbench -all` regenerates the
// full-scale tables), plus ablation benches for the design decisions called
// out in DESIGN.md and microbenchmarks for the core operations.
package uss_test

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"testing"

	uss "repro"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/samplehold"
	"repro/internal/sampling"
	"repro/internal/workload"
)

// benchCfg shrinks the experiment drivers so each bench iteration is
// seconds, not minutes.
func benchCfg(seed int64) experiments.Config {
	return experiments.Config{Scale: 0.15, Reps: 0.05, Seed: seed}
}

func runExperiment(b *testing.B, run func(experiments.Config) []experiments.Table) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables := run(benchCfg(int64(i + 1)))
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

func BenchmarkFigure1Merge(b *testing.B)     { runExperiment(b, experiments.Figure1) }
func BenchmarkFigure2Inclusion(b *testing.B) { runExperiment(b, experiments.Figure2) }
func BenchmarkFigure3Error(b *testing.B)     { runExperiment(b, experiments.Figure3) }
func BenchmarkFigure4BottomK(b *testing.B)   { runExperiment(b, experiments.Figure4) }
func BenchmarkFigure5Scatter(b *testing.B)   { runExperiment(b, experiments.Figure5) }
func BenchmarkFigure6Marginals(b *testing.B) {
	runExperiment(b, experiments.Figure6)
}
func BenchmarkFigure7Pathological(b *testing.B) { runExperiment(b, experiments.Figure7) }
func BenchmarkFigure8Coverage(b *testing.B) {
	runExperiment(b, func(c experiments.Config) []experiments.Table { return experiments.Figure8(c, nil) })
}
func BenchmarkFigure9Variance(b *testing.B) {
	runExperiment(b, func(c experiments.Config) []experiments.Table { return experiments.Figure9(c, nil) })
}
func BenchmarkFigure10Epochs(b *testing.B) {
	runExperiment(b, func(c experiments.Config) []experiments.Table { return experiments.Figure10(c, nil) })
}
func BenchmarkTheorem11Adversarial(b *testing.B) { runExperiment(b, experiments.Theorem11) }

// --- Ablation 1 (DESIGN.md): Stream-Summary bucket list vs heap for the
// minimum-bin bookkeeping. Unit-weight updates through the bucket list are
// O(1); the weighted sketch's heap pays O(log m) per update.

func benchStream(n int) []string {
	rng := rand.New(rand.NewSource(5))
	zipf := rand.NewZipf(rng, 1.1, 1, 1<<20)
	rows := make([]string, n)
	for i := range rows {
		rows[i] = fmt.Sprintf("item-%d", zipf.Uint64())
	}
	return rows
}

// BenchmarkUpdateStreamSummary measures the steady-state ingest rate: the
// sketch is pre-built (at capacity, slab free-lists warm) outside the timed
// loop, so the numbers isolate the per-row cost — and must report
// 0 allocs/op (see DESIGN.md for the slab layout this relies on).
func BenchmarkUpdateStreamSummary(b *testing.B) {
	rows := benchStream(1 << 16)
	sk := core.New(1024, core.Unbiased, rand.New(rand.NewSource(1)))
	for _, r := range rows {
		sk.Update(r)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, r := range rows {
			sk.Update(r)
		}
	}
	b.SetBytes(int64(len(rows)))
}

// BenchmarkBuildStreamSummary is the from-scratch variant (construction and
// fill phase included), the shape this benchmark had before the slab
// refactor.
func BenchmarkBuildStreamSummary(b *testing.B) {
	rows := benchStream(1 << 16)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sk := core.New(1024, core.Unbiased, rng)
		for _, r := range rows {
			sk.Update(r)
		}
	}
	b.SetBytes(int64(len(rows)))
}

func BenchmarkUpdateHeap(b *testing.B) {
	rows := benchStream(1 << 16)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sk := core.NewWeighted(1024, rng)
		for _, r := range rows {
			sk.Update(r, 1)
		}
	}
	b.SetBytes(int64(len(rows)))
}

func BenchmarkUpdateDeterministic(b *testing.B) {
	rows := benchStream(1 << 16)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sk := core.New(1024, core.Deterministic, rng)
		for _, r := range rows {
			sk.Update(r)
		}
	}
	b.SetBytes(int64(len(rows)))
}

// --- Ablation 2 (DESIGN.md): pairwise vs pivotal merge reduction.

func benchBins(n int) []core.Bin {
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.2, 1, 1<<16)
	bins := make([]core.Bin, n)
	for i := range bins {
		bins[i] = core.Bin{Item: fmt.Sprintf("b%d", i), Count: float64(zipf.Uint64() + 1)}
	}
	return bins
}

func BenchmarkMergePairwise(b *testing.B) {
	bins := benchBins(4096)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.ReducePairwise(bins, 1024, rng)
	}
}

func BenchmarkMergePivotal(b *testing.B) {
	bins := benchBins(4096)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.ReducePivotal(bins, 1024, rng)
	}
}

func BenchmarkMergeMisraGries(b *testing.B) {
	bins := benchBins(4096)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.ReduceMisraGries(bins, 1024)
	}
}

// --- Baseline comparisons: the competing sketches processing the same
// disaggregated stream (adaptive sample-and-hold) and the pre-aggregated
// samplers.

func BenchmarkAdaptiveSampleHold(b *testing.B) {
	rows := benchStream(1 << 16)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := samplehold.NewAdaptive(1024, 0.9, rng)
		for _, r := range rows {
			a.Update(r)
		}
	}
	b.SetBytes(int64(len(rows)))
}

func BenchmarkPrioritySample(b *testing.B) {
	pop := workload.DiscretizedWeibull(1<<14, 100, 0.32)
	items := make([]sampling.Item, 0, len(pop.Counts))
	for i, c := range pop.Counts {
		if c > 0 {
			items = append(items, sampling.Item{Key: workload.Label(i), Value: float64(c)})
		}
	}
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sampling.Priority(items, 1024, rng)
	}
}

// --- Query-path microbenchmarks through the public API.

func buildBenchSketch() *uss.Sketch {
	sk := uss.New(4096, uss.WithSeed(9))
	for _, r := range benchStream(1 << 17) {
		sk.Update(r)
	}
	return sk
}

func BenchmarkSubsetSum(b *testing.B) {
	sk := buildBenchSketch()
	pred := func(s string) bool { return len(s)%2 == 0 }
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if e := sk.SubsetSum(pred); e.Value < 0 {
			b.Fatal("negative estimate")
		}
	}
}

func BenchmarkTopK(b *testing.B) {
	sk := buildBenchSketch()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(sk.TopK(100)) == 0 {
			b.Fatal("empty TopK")
		}
	}
}

func BenchmarkMarshalRoundTrip(b *testing.B) {
	sk := buildBenchSketch()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blob, err := sk.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		var back uss.Sketch
		if err := back.UnmarshalBinary(blob); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Codec benchmarks: v2 binary wire format vs the legacy gob format on
// the acceptance-sized 64Ki-bin sketch. The gob side uses the same
// synthesized v1 snapshot the compat tests use; its decode runs through
// UnmarshalBinary's fallback path.

func buildCodecBenchSketch(b *testing.B) *uss.Sketch {
	b.Helper()
	sk := uss.New(1<<16, uss.WithSeed(10))
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1<<18; i++ {
		sk.Update(fmt.Sprintf("item-%08d", rng.Intn(1<<17)))
	}
	return sk
}

func gobEncodeBench(b *testing.B, sk *uss.Sketch) []byte {
	b.Helper()
	var buf bytes.Buffer
	snap := v1Snapshot{Version: 1, Capacity: sk.Capacity(), Rows: sk.Rows(), Bins: sk.Bins()}
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

func BenchmarkCodecEncode(b *testing.B) {
	sk := buildCodecBenchSketch(b)
	b.Run("GobV1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if blob := gobEncodeBench(b, sk); len(blob) == 0 {
				b.Fatal("empty blob")
			}
		}
	})
	b.Run("V2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			blob, err := sk.MarshalBinary()
			if err != nil || len(blob) == 0 {
				b.Fatal(err)
			}
		}
	})
	b.Run("V2Reused", func(b *testing.B) {
		buf, err := sk.AppendBinary(nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf, err = sk.AppendBinary(buf[:0])
			if err != nil || len(buf) == 0 {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkCodecDecode(b *testing.B) {
	sk := buildCodecBenchSketch(b)
	gobBlob := gobEncodeBench(b, sk)
	v2Blob, err := sk.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("GobV1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var back uss.Sketch
			if err := back.UnmarshalBinary(gobBlob); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("V2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var back uss.Sketch
			if err := back.UnmarshalBinary(v2Blob); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The merge path: bins only, no sketch materialized.
	b.Run("V2Bins", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bins, err := uss.DecodeBins(v2Blob)
			if err != nil || len(bins) == 0 {
				b.Fatal(err)
			}
		}
	})
}
